//===- dsl/Lexer.cpp - GraphIt-subset tokenizer ---------------------------===//
//
// Part of graphit-ordered, an independent C++ reproduction of "Optimizing
// Ordered Graph Algorithms with GraphIt" (CGO 2020). MIT License.
//
//===----------------------------------------------------------------------===//

#include "dsl/Lexer.h"

#include <cctype>
#include <cstdlib>
#include <map>

using namespace graphit;
using namespace graphit::dsl;

const char *graphit::dsl::tokenKindName(TokenKind Kind) {
  switch (Kind) {
  case TokenKind::Eof:
    return "<eof>";
  case TokenKind::Identifier:
    return "identifier";
  case TokenKind::IntLiteral:
    return "integer literal";
  case TokenKind::FloatLiteral:
    return "float literal";
  case TokenKind::StringLiteral:
    return "string literal";
  case TokenKind::Label:
    return "label";
  case TokenKind::KwElement:
    return "'element'";
  case TokenKind::KwConst:
    return "'const'";
  case TokenKind::KwFunc:
    return "'func'";
  case TokenKind::KwExtern:
    return "'extern'";
  case TokenKind::KwVar:
    return "'var'";
  case TokenKind::KwWhile:
    return "'while'";
  case TokenKind::KwIf:
    return "'if'";
  case TokenKind::KwElif:
    return "'elif'";
  case TokenKind::KwElse:
    return "'else'";
  case TokenKind::KwEnd:
    return "'end'";
  case TokenKind::KwDelete:
    return "'delete'";
  case TokenKind::KwNew:
    return "'new'";
  case TokenKind::KwTrue:
    return "'true'";
  case TokenKind::KwFalse:
    return "'false'";
  case TokenKind::KwAnd:
    return "'and'";
  case TokenKind::KwOr:
    return "'or'";
  case TokenKind::KwNot:
    return "'not'";
  case TokenKind::KwReturn:
    return "'return'";
  case TokenKind::KwEdgeSet:
    return "'edgeset'";
  case TokenKind::KwVertexSet:
    return "'vertexset'";
  case TokenKind::KwVector:
    return "'vector'";
  case TokenKind::KwPriorityQueue:
    return "'priority_queue'";
  case TokenKind::KwInt:
    return "'int'";
  case TokenKind::KwFloat:
    return "'float'";
  case TokenKind::KwBool:
    return "'bool'";
  case TokenKind::LParen:
    return "'('";
  case TokenKind::RParen:
    return "')'";
  case TokenKind::LBrace:
    return "'{'";
  case TokenKind::RBrace:
    return "'}'";
  case TokenKind::LBracket:
    return "'['";
  case TokenKind::RBracket:
    return "']'";
  case TokenKind::Comma:
    return "','";
  case TokenKind::Semicolon:
    return "';'";
  case TokenKind::Colon:
    return "':'";
  case TokenKind::Dot:
    return "'.'";
  case TokenKind::Assign:
    return "'='";
  case TokenKind::Plus:
    return "'+'";
  case TokenKind::Minus:
    return "'-'";
  case TokenKind::Star:
    return "'*'";
  case TokenKind::Slash:
    return "'/'";
  case TokenKind::Percent:
    return "'%'";
  case TokenKind::EqEq:
    return "'=='";
  case TokenKind::NotEq:
    return "'!='";
  case TokenKind::Less:
    return "'<'";
  case TokenKind::LessEq:
    return "'<='";
  case TokenKind::Greater:
    return "'>'";
  case TokenKind::GreaterEq:
    return "'>='";
  }
  return "<bad token>";
}

namespace {

const std::map<std::string, TokenKind> &keywordTable() {
  static const std::map<std::string, TokenKind> Table = {
      {"element", TokenKind::KwElement},
      {"const", TokenKind::KwConst},
      {"func", TokenKind::KwFunc},
      {"extern", TokenKind::KwExtern},
      {"var", TokenKind::KwVar},
      {"while", TokenKind::KwWhile},
      {"if", TokenKind::KwIf},
      {"elif", TokenKind::KwElif},
      {"else", TokenKind::KwElse},
      {"end", TokenKind::KwEnd},
      {"delete", TokenKind::KwDelete},
      {"new", TokenKind::KwNew},
      {"true", TokenKind::KwTrue},
      {"false", TokenKind::KwFalse},
      {"and", TokenKind::KwAnd},
      {"or", TokenKind::KwOr},
      {"not", TokenKind::KwNot},
      {"return", TokenKind::KwReturn},
      {"edgeset", TokenKind::KwEdgeSet},
      {"vertexset", TokenKind::KwVertexSet},
      {"vector", TokenKind::KwVector},
      {"priority_queue", TokenKind::KwPriorityQueue},
      {"int", TokenKind::KwInt},
      {"float", TokenKind::KwFloat},
      {"bool", TokenKind::KwBool},
  };
  return Table;
}

class LexerImpl {
public:
  LexerImpl(const std::string &Source, std::string &ErrorOut)
      : Src(Source), Error(ErrorOut) {}

  std::vector<Token> run() {
    std::vector<Token> Tokens;
    while (true) {
      skipWhitespaceAndComments();
      Token T = next();
      Tokens.push_back(T);
      if (T.Kind == TokenKind::Eof || !Error.empty())
        break;
    }
    return Tokens;
  }

private:
  char peek(int Ahead = 0) const {
    size_t I = Pos + static_cast<size_t>(Ahead);
    return I < Src.size() ? Src[I] : '\0';
  }

  char advance() {
    char C = peek();
    ++Pos;
    if (C == '\n') {
      ++Loc.Line;
      Loc.Column = 1;
    } else {
      ++Loc.Column;
    }
    return C;
  }

  void skipWhitespaceAndComments() {
    while (true) {
      char C = peek();
      if (std::isspace(static_cast<unsigned char>(C))) {
        advance();
        continue;
      }
      if (C == '%') { // GraphIt line comment
        while (peek() != '\n' && peek() != '\0')
          advance();
        continue;
      }
      // C++-style comments are also tolerated in .gt sources.
      if (C == '/' && peek(1) == '/') {
        while (peek() != '\n' && peek() != '\0')
          advance();
        continue;
      }
      return;
    }
  }

  Token make(TokenKind Kind, SourceLoc At, std::string Text = "") {
    Token T;
    T.Kind = Kind;
    T.Text = std::move(Text);
    T.Loc = At;
    return T;
  }

  Token fail(SourceLoc At, const std::string &Message) {
    Error = "line " + std::to_string(At.Line) + ":" +
            std::to_string(At.Column) + ": " + Message;
    return make(TokenKind::Eof, At);
  }

  Token next() {
    SourceLoc At = Loc;
    char C = peek();
    if (C == '\0')
      return make(TokenKind::Eof, At);

    if (std::isalpha(static_cast<unsigned char>(C)) || C == '_')
      return identifierOrKeyword(At);
    if (std::isdigit(static_cast<unsigned char>(C)))
      return number(At);

    advance();
    switch (C) {
    case '#':
      return label(At);
    case '"':
      return stringLiteral(At);
    case '(':
      return make(TokenKind::LParen, At);
    case ')':
      return make(TokenKind::RParen, At);
    case '{':
      return make(TokenKind::LBrace, At);
    case '}':
      return make(TokenKind::RBrace, At);
    case '[':
      return make(TokenKind::LBracket, At);
    case ']':
      return make(TokenKind::RBracket, At);
    case ',':
      return make(TokenKind::Comma, At);
    case ';':
      return make(TokenKind::Semicolon, At);
    case ':':
      return make(TokenKind::Colon, At);
    case '.':
      return make(TokenKind::Dot, At);
    case '+':
      return make(TokenKind::Plus, At);
    case '-':
      return make(TokenKind::Minus, At);
    case '*':
      return make(TokenKind::Star, At);
    case '/':
      return make(TokenKind::Slash, At);
    case '=':
      if (peek() == '=') {
        advance();
        return make(TokenKind::EqEq, At);
      }
      return make(TokenKind::Assign, At);
    case '!':
      if (peek() == '=') {
        advance();
        return make(TokenKind::NotEq, At);
      }
      return fail(At, "expected '=' after '!'");
    case '<':
      if (peek() == '=') {
        advance();
        return make(TokenKind::LessEq, At);
      }
      return make(TokenKind::Less, At);
    case '>':
      if (peek() == '=') {
        advance();
        return make(TokenKind::GreaterEq, At);
      }
      return make(TokenKind::Greater, At);
    default:
      return fail(At, std::string("unexpected character '") + C + "'");
    }
  }

  Token identifierOrKeyword(SourceLoc At) {
    std::string Text;
    while (std::isalnum(static_cast<unsigned char>(peek())) ||
           peek() == '_')
      Text += advance();
    auto It = keywordTable().find(Text);
    if (It != keywordTable().end())
      return make(It->second, At, Text);
    return make(TokenKind::Identifier, At, Text);
  }

  Token number(SourceLoc At) {
    std::string Text;
    bool IsFloat = false;
    while (std::isdigit(static_cast<unsigned char>(peek())))
      Text += advance();
    if (peek() == '.' &&
        std::isdigit(static_cast<unsigned char>(peek(1)))) {
      IsFloat = true;
      Text += advance();
      while (std::isdigit(static_cast<unsigned char>(peek())))
        Text += advance();
    }
    Token T = make(IsFloat ? TokenKind::FloatLiteral
                           : TokenKind::IntLiteral,
                   At, Text);
    if (IsFloat)
      T.FloatValue = std::atof(Text.c_str());
    else
      T.IntValue = std::atoll(Text.c_str());
    return T;
  }

  Token stringLiteral(SourceLoc At) {
    std::string Text;
    while (peek() != '"') {
      if (peek() == '\0' || peek() == '\n')
        return fail(At, "unterminated string literal");
      Text += advance();
    }
    advance(); // closing quote
    return make(TokenKind::StringLiteral, At, Text);
  }

  Token label(SourceLoc At) {
    std::string Text;
    while (peek() != '#') {
      if (peek() == '\0' || peek() == '\n')
        return fail(At, "unterminated #label#");
      Text += advance();
    }
    advance(); // closing '#'
    if (Text.empty())
      return fail(At, "empty #label#");
    return make(TokenKind::Label, At, Text);
  }

  const std::string &Src;
  std::string &Error;
  size_t Pos = 0;
  SourceLoc Loc;
};

} // namespace

std::vector<Token> graphit::dsl::lex(const std::string &Source,
                                     std::string &ErrorOut) {
  ErrorOut.clear();
  return LexerImpl(Source, ErrorOut).run();
}
