//===- dsl/Sema.cpp - Symbol resolution and type checking -----------------===//
//
// Part of graphit-ordered, an independent C++ reproduction of "Optimizing
// Ordered Graph Algorithms with GraphIt" (CGO 2020). MIT License.
//
//===----------------------------------------------------------------------===//

#include "dsl/Sema.h"

#include <algorithm>
#include <set>

using namespace graphit;
using namespace graphit::dsl;

namespace {

class SemaImpl {
public:
  explicit SemaImpl(Program &P) : Prog(P) {}

  SemaResult run() {
    collectGlobals();
    for (auto &F : Prog.Funcs)
      checkFunc(*F);
    return std::move(Result);
  }

private:
  void error(SourceLoc Loc, const std::string &Message) {
    Result.Errors.push_back("line " + std::to_string(Loc.Line) + ":" +
                            std::to_string(Loc.Column) + ": " + Message);
  }

  void collectGlobals() {
    for (auto &E : Prog.Elements) {
      if (Result.Globals.count(E->Name))
        error(E->loc(), "duplicate element '" + E->Name + "'");
      TypeRef T(TypeKind::Vertex);
      T.Element = E->Name;
      Result.Globals[E->Name] = T;
    }
    for (auto &C : Prog.Consts) {
      if (Result.Globals.count(C->Name))
        error(C->loc(), "duplicate global '" + C->Name + "'");
      Result.Globals[C->Name] = C->DeclType;
    }
    for (auto &F : Prog.Funcs) {
      if (FuncNames.count(F->Name))
        error(F->loc(), "duplicate function '" + F->Name + "'");
      FuncNames.insert(F->Name);
    }
    // Initializers are checked in a pseudo-scope with no locals.
    Locals.clear();
    for (auto &C : Prog.Consts)
      if (C->Init)
        checkExpr(*C->Init);
  }

  void checkFunc(FuncDecl &F) {
    Locals.clear();
    for (const Param &P : F.Params) {
      if (Locals.count(P.Name))
        error(F.loc(), "duplicate parameter '" + P.Name + "'");
      Locals[P.Name] = P.Type;
    }
    for (StmtPtr &S : F.Body)
      checkStmt(*S);
  }

  void checkStmt(Stmt &S) {
    if (auto *VD = dyn_cast<VarDeclStmt>(&S)) {
      if (VD->Init) {
        TypeRef T = checkExpr(*VD->Init);
        if (VD->DeclType.isNumeric() && T.Kind == TypeKind::Bool)
          error(VD->loc(), "cannot initialize numeric variable '" +
                               VD->Name + "' with a bool");
      }
      if (Locals.count(VD->Name) || Result.Globals.count(VD->Name))
        error(VD->loc(), "redeclaration of '" + VD->Name + "'");
      Locals[VD->Name] = VD->DeclType;
      return;
    }
    if (auto *AS = dyn_cast<AssignStmt>(&S)) {
      if (AS->Target)
        checkExpr(*AS->Target);
      if (AS->Value)
        checkExpr(*AS->Value);
      return;
    }
    if (auto *ES = dyn_cast<ExprStmt>(&S)) {
      if (ES->E)
        checkExpr(*ES->E);
      return;
    }
    if (auto *WS = dyn_cast<WhileStmt>(&S)) {
      TypeRef T = checkExpr(*WS->Cond);
      if (T.Kind != TypeKind::Bool && T.Kind != TypeKind::Invalid)
        error(WS->loc(), "while condition must be bool, got " +
                             T.toString());
      for (StmtPtr &B : WS->Body)
        checkStmt(*B);
      return;
    }
    if (auto *IS = dyn_cast<IfStmt>(&S)) {
      TypeRef T = checkExpr(*IS->Cond);
      if (T.Kind != TypeKind::Bool && T.Kind != TypeKind::Invalid)
        error(IS->loc(),
              "if condition must be bool, got " + T.toString());
      for (StmtPtr &B : IS->Then)
        checkStmt(*B);
      for (StmtPtr &B : IS->Else)
        checkStmt(*B);
      return;
    }
    if (auto *DS = dyn_cast<DeleteStmt>(&S)) {
      if (!Locals.count(DS->Name) && !Result.Globals.count(DS->Name))
        error(DS->loc(), "delete of undeclared '" + DS->Name + "'");
      return;
    }
    if (auto *RS = dyn_cast<ReturnStmt>(&S)) {
      if (RS->Value)
        checkExpr(*RS->Value);
      return;
    }
  }

  TypeRef lookup(const std::string &Name, SourceLoc Loc) {
    auto L = Locals.find(Name);
    if (L != Locals.end())
      return L->second;
    auto G = Result.Globals.find(Name);
    if (G != Result.Globals.end())
      return G->second;
    if (Name == "argv")
      return TypeRef(TypeKind::String);
    if (Name == "INT_MAX")
      return TypeRef(TypeKind::Int);
    if (FuncNames.count(Name))
      return TypeRef(TypeKind::Void); // function reference argument
    error(Loc, "use of undeclared identifier '" + Name + "'");
    return TypeRef();
  }

  TypeRef checkExpr(Expr &E) {
    TypeRef T = computeType(E);
    E.Type = T;
    return T;
  }

  TypeRef computeType(Expr &E) {
    if (isa<IntLiteralExpr>(&E))
      return TypeRef(TypeKind::Int);
    if (isa<FloatLiteralExpr>(&E))
      return TypeRef(TypeKind::Float);
    if (isa<BoolLiteralExpr>(&E))
      return TypeRef(TypeKind::Bool);
    if (isa<StringLiteralExpr>(&E))
      return TypeRef(TypeKind::String);
    if (auto *V = dyn_cast<VarRefExpr>(&E))
      return lookup(V->Name, V->loc());
    if (auto *B = dyn_cast<BinaryExpr>(&E))
      return checkBinary(*B);
    if (auto *U = dyn_cast<UnaryExpr>(&E)) {
      TypeRef T = U->Operand ? checkExpr(*U->Operand) : TypeRef();
      if (U->Op == UnaryExpr::OpKind::Not) {
        if (T.Kind != TypeKind::Bool && T.Kind != TypeKind::Invalid)
          error(U->loc(), "'not' requires a bool operand");
        return TypeRef(TypeKind::Bool);
      }
      if (!T.isNumeric() && T.Kind != TypeKind::Invalid)
        error(U->loc(), "negation requires a numeric operand");
      return T;
    }
    if (auto *C = dyn_cast<CallExpr>(&E))
      return checkCall(*C);
    if (auto *M = dyn_cast<MethodCallExpr>(&E))
      return checkMethodCall(*M);
    if (auto *I = dyn_cast<IndexExpr>(&E))
      return checkIndex(*I);
    if (auto *N = dyn_cast<NewPriorityQueueExpr>(&E)) {
      for (ExprPtr &A : N->Args)
        if (A)
          checkExpr(*A);
      return N->PQType;
    }
    return TypeRef();
  }

  TypeRef checkBinary(BinaryExpr &B) {
    TypeRef L = B.LHS ? checkExpr(*B.LHS) : TypeRef();
    TypeRef R = B.RHS ? checkExpr(*B.RHS) : TypeRef();
    using Op = BinaryExpr::OpKind;
    switch (B.Op) {
    case Op::And:
    case Op::Or:
      if ((L.Kind != TypeKind::Bool && L.Kind != TypeKind::Invalid) ||
          (R.Kind != TypeKind::Bool && R.Kind != TypeKind::Invalid))
        error(B.loc(), "logical operator requires bool operands");
      return TypeRef(TypeKind::Bool);
    case Op::Eq:
    case Op::Ne:
    case Op::Lt:
    case Op::Le:
    case Op::Gt:
    case Op::Ge:
      return TypeRef(TypeKind::Bool);
    case Op::Add:
    case Op::Sub:
    case Op::Mul:
    case Op::Div:
      if ((L.Kind != TypeKind::Invalid && !L.isNumeric() &&
           L.Kind != TypeKind::Vertex) ||
          (R.Kind != TypeKind::Invalid && !R.isNumeric() &&
           R.Kind != TypeKind::Vertex))
        error(B.loc(), "arithmetic requires numeric operands");
      if (L.Kind == TypeKind::Float || R.Kind == TypeKind::Float)
        return TypeRef(TypeKind::Float);
      return TypeRef(TypeKind::Int);
    }
    return TypeRef();
  }

  TypeRef checkCall(CallExpr &C) {
    for (ExprPtr &A : C.Args)
      if (A)
        checkExpr(*A);
    if (C.Callee == "load") {
      TypeRef T(TypeKind::EdgeSet);
      T.Params = {TypeKind::Vertex, TypeKind::Vertex, TypeKind::Int};
      return T;
    }
    if (C.Callee == "atoi")
      return TypeRef(TypeKind::Int);
    if (C.Callee == "to_float")
      return TypeRef(TypeKind::Float);
    if (C.Callee == "load_vertex_data") {
      TypeRef T(TypeKind::Vector);
      T.Element = "Vertex";
      T.Params = {TypeKind::Int};
      return T;
    }
    if (!FuncNames.count(C.Callee)) {
      error(C.loc(), "call to undeclared function '" + C.Callee + "'");
      return TypeRef();
    }
    const FuncDecl *F = Prog.findFunc(C.Callee);
    if (F && F->Params.size() != C.Args.size())
      error(C.loc(), "wrong number of arguments to '" + C.Callee + "'");
    return F ? F->ReturnType : TypeRef();
  }

  TypeRef checkMethodCall(MethodCallExpr &M) {
    TypeRef Base = M.Base ? checkExpr(*M.Base) : TypeRef();
    // Argument expressions are checked uniformly, except function
    // references passed to applyUpdatePriority.
    for (ExprPtr &A : M.Args) {
      if (!A)
        continue;
      if (M.Method == "applyUpdatePriority" && isa<VarRefExpr>(A.get())) {
        const std::string &FName = cast<VarRefExpr>(A.get())->Name;
        if (!FuncNames.count(FName))
          error(A->loc(), "applyUpdatePriority requires a function, '" +
                              FName + "' is not one");
        A->Type = TypeRef(TypeKind::Void);
        continue;
      }
      checkExpr(*A);
    }

    if (Base.Kind == TypeKind::PriorityQueue)
      return checkPQMethod(M, Base);

    if (Base.Kind == TypeKind::EdgeSet) {
      if (M.Method == "from") {
        if (M.Args.size() != 1)
          error(M.loc(), "from() takes exactly one vertexset");
        return Base; // filtered edgeset
      }
      if (M.Method == "applyUpdatePriority") {
        if (M.Args.size() != 1)
          error(M.loc(), "applyUpdatePriority takes exactly one function");
        return TypeRef(TypeKind::Void);
      }
      if (M.Method == "getOutDegrees") {
        TypeRef T(TypeKind::Vector);
        T.Element = Base.Element;
        T.Params = {TypeKind::Int};
        return T;
      }
      error(M.loc(), "unknown edgeset method '" + M.Method + "'");
      return TypeRef();
    }
    if (Base.Kind == TypeKind::VertexSet) {
      if (M.Method == "getVertexSetSize" || M.Method == "size")
        return TypeRef(TypeKind::Int);
      error(M.loc(), "unknown vertexset method '" + M.Method + "'");
      return TypeRef();
    }
    if (Base.Kind != TypeKind::Invalid)
      error(M.loc(), "type " + Base.toString() + " has no methods");
    return TypeRef();
  }

  TypeRef checkPQMethod(MethodCallExpr &M, const TypeRef &PQ) {
    auto RequireArgs = [&](size_t Lo, size_t Hi) {
      if (M.Args.size() < Lo || M.Args.size() > Hi)
        error(M.loc(),
              "wrong number of arguments to pq." + M.Method + "()");
    };
    TypeKind Val = PQ.Params.empty() ? TypeKind::Int : PQ.Params[0];
    if (M.Method == "finished") {
      RequireArgs(0, 0);
      return TypeRef(TypeKind::Bool);
    }
    if (M.Method == "finishedVertex") {
      RequireArgs(1, 1);
      return TypeRef(TypeKind::Bool);
    }
    if (M.Method == "dequeueReadySet" || M.Method == "dequeue_ready_set") {
      RequireArgs(0, 0);
      TypeRef T(TypeKind::VertexSet);
      T.Element = PQ.Element;
      return T;
    }
    if (M.Method == "getCurrentPriority" ||
        M.Method == "get_current_priority") {
      RequireArgs(0, 0);
      return TypeRef(Val);
    }
    if (M.Method == "updatePriorityMin" || M.Method == "updatePriorityMax") {
      // Table 1 form: (v, new_val); Fig. 3 also passes the old value as a
      // middle argument — both are accepted.
      RequireArgs(2, 3);
      return TypeRef(TypeKind::Void);
    }
    if (M.Method == "updatePrioritySum") {
      RequireArgs(2, 3);
      return TypeRef(TypeKind::Void);
    }
    error(M.loc(), "unknown priority_queue method '" + M.Method + "'");
    return TypeRef();
  }

  TypeRef checkIndex(IndexExpr &I) {
    TypeRef Base = I.Base ? checkExpr(*I.Base) : TypeRef();
    if (I.Index)
      checkExpr(*I.Index);
    if (Base.Kind == TypeKind::Vector)
      return TypeRef(Base.Params.empty() ? TypeKind::Int : Base.Params[0]);
    if (Base.Kind == TypeKind::String)
      return TypeRef(TypeKind::String); // argv[i]
    if (Base.Kind != TypeKind::Invalid)
      error(I.loc(), "type " + Base.toString() + " cannot be indexed");
    return TypeRef();
  }

  Program &Prog;
  SemaResult Result;
  std::map<std::string, TypeRef> Locals;
  std::set<std::string> FuncNames;
};

} // namespace

SemaResult graphit::dsl::analyzeSemantics(Program &Prog) {
  return SemaImpl(Prog).run();
}
