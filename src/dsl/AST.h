//===- dsl/AST.h - GraphIt-subset abstract syntax tree ----------*- C++ -*-===//
//
// Part of graphit-ordered, an independent C++ reproduction of "Optimizing
// Ordered Graph Algorithms with GraphIt" (CGO 2020). MIT License.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// AST for the GraphIt algorithm-language subset with the priority-based
/// extension. Nodes use LLVM-style RTTI (a NodeKind discriminator plus
/// `classof`, consumed by `isa<>/cast<>/dyn_cast<>` from
/// support/Casting.h); ownership is by `std::unique_ptr` down the tree.
///
//===----------------------------------------------------------------------===//

#ifndef GRAPHIT_DSL_AST_H
#define GRAPHIT_DSL_AST_H

#include "dsl/Lexer.h"
#include "support/Casting.h"

#include <memory>
#include <string>
#include <vector>

namespace graphit {
namespace dsl {

/// Discriminator for the whole node hierarchy. Ranges matter: keep the
/// First/Last markers in sync when adding kinds.
enum class NodeKind {
  // Expressions.
  IntLiteralExpr,
  FloatLiteralExpr,
  BoolLiteralExpr,
  StringLiteralExpr,
  VarRefExpr,
  BinaryExpr,
  UnaryExpr,
  CallExpr,
  MethodCallExpr,
  IndexExpr,
  NewPriorityQueueExpr,
  FirstExpr = IntLiteralExpr,
  LastExpr = NewPriorityQueueExpr,

  // Statements.
  VarDeclStmt,
  AssignStmt,
  ExprStmt,
  WhileStmt,
  IfStmt,
  DeleteStmt,
  ReturnStmt,
  FirstStmt = VarDeclStmt,
  LastStmt = ReturnStmt,

  // Declarations.
  ElementDecl,
  ConstDecl,
  FuncDecl,
  FirstDecl = ElementDecl,
  LastDecl = FuncDecl,

  Program,
};

/// Structural type descriptor (the language's types are simple enough not
/// to need an AST of their own).
enum class TypeKind {
  Invalid,
  Int,
  Float,
  Bool,
  String,
  Vertex,
  Edge,
  VertexSet,      ///< vertexset{Element}
  EdgeSet,        ///< edgeset{Element}(Vertex, Vertex[, int])
  Vector,         ///< vector{Element}(scalar)
  PriorityQueue,  ///< priority_queue{Element}(scalar)
  Void,
};

/// A (possibly parameterized) type reference.
struct TypeRef {
  TypeKind Kind = TypeKind::Invalid;
  std::string Element;          ///< element name for set/vector/pq types
  std::vector<TypeKind> Params; ///< endpoint/value scalar kinds

  TypeRef() = default;
  explicit TypeRef(TypeKind Kind) : Kind(Kind) {}

  bool isNumeric() const {
    return Kind == TypeKind::Int || Kind == TypeKind::Float;
  }
  bool isWeightedEdgeSet() const {
    return Kind == TypeKind::EdgeSet && Params.size() >= 3;
  }
  bool operator==(const TypeRef &O) const {
    return Kind == O.Kind && Element == O.Element && Params == O.Params;
  }
  std::string toString() const;
};

//===----------------------------------------------------------------------===//
// Base node
//===----------------------------------------------------------------------===//

class ASTNode {
public:
  NodeKind kind() const { return Kind; }
  SourceLoc loc() const { return Loc; }

protected:
  ASTNode(NodeKind Kind, SourceLoc Loc) : Kind(Kind), Loc(Loc) {}
  // Non-virtual and protected: nothing deletes through ASTNode*. The
  // polymorphic owner roots (Expr, Stmt) carry the virtual destructors.
  ~ASTNode() = default;

private:
  NodeKind Kind;
  SourceLoc Loc;
};

//===----------------------------------------------------------------------===//
// Expressions
//===----------------------------------------------------------------------===//

class Expr : public ASTNode {
public:
  TypeRef Type; ///< filled in by Sema

  /// Virtual: expression nodes are owned and deleted as `ExprPtr`
  /// (unique_ptr<Expr>), so destruction must dispatch to the derived
  /// class — members like operand vectors and strings leak (and ASan's
  /// new-delete-type-mismatch fires) otherwise.
  virtual ~Expr() = default;

  static bool classof(const ASTNode *N) {
    return N->kind() >= NodeKind::FirstExpr &&
           N->kind() <= NodeKind::LastExpr;
  }

protected:
  Expr(NodeKind Kind, SourceLoc Loc) : ASTNode(Kind, Loc) {}
};

using ExprPtr = std::unique_ptr<Expr>;

class IntLiteralExpr : public Expr {
public:
  int64_t Value;
  IntLiteralExpr(int64_t Value, SourceLoc Loc)
      : Expr(NodeKind::IntLiteralExpr, Loc), Value(Value) {}
  static bool classof(const ASTNode *N) {
    return N->kind() == NodeKind::IntLiteralExpr;
  }
};

class FloatLiteralExpr : public Expr {
public:
  double Value;
  FloatLiteralExpr(double Value, SourceLoc Loc)
      : Expr(NodeKind::FloatLiteralExpr, Loc), Value(Value) {}
  static bool classof(const ASTNode *N) {
    return N->kind() == NodeKind::FloatLiteralExpr;
  }
};

class BoolLiteralExpr : public Expr {
public:
  bool Value;
  BoolLiteralExpr(bool Value, SourceLoc Loc)
      : Expr(NodeKind::BoolLiteralExpr, Loc), Value(Value) {}
  static bool classof(const ASTNode *N) {
    return N->kind() == NodeKind::BoolLiteralExpr;
  }
};

class StringLiteralExpr : public Expr {
public:
  std::string Value;
  StringLiteralExpr(std::string Value, SourceLoc Loc)
      : Expr(NodeKind::StringLiteralExpr, Loc), Value(std::move(Value)) {}
  static bool classof(const ASTNode *N) {
    return N->kind() == NodeKind::StringLiteralExpr;
  }
};

class VarRefExpr : public Expr {
public:
  std::string Name;
  VarRefExpr(std::string Name, SourceLoc Loc)
      : Expr(NodeKind::VarRefExpr, Loc), Name(std::move(Name)) {}
  static bool classof(const ASTNode *N) {
    return N->kind() == NodeKind::VarRefExpr;
  }
};

class BinaryExpr : public Expr {
public:
  enum class OpKind { Add, Sub, Mul, Div, Eq, Ne, Lt, Le, Gt, Ge, And, Or };
  OpKind Op;
  ExprPtr LHS, RHS;
  BinaryExpr(OpKind Op, ExprPtr LHS, ExprPtr RHS, SourceLoc Loc)
      : Expr(NodeKind::BinaryExpr, Loc), Op(Op), LHS(std::move(LHS)),
        RHS(std::move(RHS)) {}
  static bool classof(const ASTNode *N) {
    return N->kind() == NodeKind::BinaryExpr;
  }
};

/// Spelling of a binary operator ("+", "==", ...).
const char *binaryOpSpelling(BinaryExpr::OpKind Op);

class UnaryExpr : public Expr {
public:
  enum class OpKind { Neg, Not };
  OpKind Op;
  ExprPtr Operand;
  UnaryExpr(OpKind Op, ExprPtr Operand, SourceLoc Loc)
      : Expr(NodeKind::UnaryExpr, Loc), Op(Op),
        Operand(std::move(Operand)) {}
  static bool classof(const ASTNode *N) {
    return N->kind() == NodeKind::UnaryExpr;
  }
};

/// Free-function call: user functions and intrinsics (`load`, `atoi`).
class CallExpr : public Expr {
public:
  std::string Callee;
  std::vector<ExprPtr> Args;
  CallExpr(std::string Callee, std::vector<ExprPtr> Args, SourceLoc Loc)
      : Expr(NodeKind::CallExpr, Loc), Callee(std::move(Callee)),
        Args(std::move(Args)) {}
  static bool classof(const ASTNode *N) {
    return N->kind() == NodeKind::CallExpr;
  }
};

/// Method call `base.method(args)`, possibly chained
/// (`edges.from(bucket).applyUpdatePriority(f)`).
class MethodCallExpr : public Expr {
public:
  ExprPtr Base;
  std::string Method;
  std::vector<ExprPtr> Args;
  MethodCallExpr(ExprPtr Base, std::string Method, std::vector<ExprPtr> Args,
                 SourceLoc Loc)
      : Expr(NodeKind::MethodCallExpr, Loc), Base(std::move(Base)),
        Method(std::move(Method)), Args(std::move(Args)) {}
  static bool classof(const ASTNode *N) {
    return N->kind() == NodeKind::MethodCallExpr;
  }
};

/// Indexing `vec[expr]` (also `argv[i]`).
class IndexExpr : public Expr {
public:
  ExprPtr Base;
  ExprPtr Index;
  IndexExpr(ExprPtr Base, ExprPtr Index, SourceLoc Loc)
      : Expr(NodeKind::IndexExpr, Loc), Base(std::move(Base)),
        Index(std::move(Index)) {}
  static bool classof(const ASTNode *N) {
    return N->kind() == NodeKind::IndexExpr;
  }
};

/// `new priority_queue{Vertex}(int)(allow_coarsening, "lower_first",
/// priority_vector, start_vertex)` — Table 1's constructor.
class NewPriorityQueueExpr : public Expr {
public:
  TypeRef PQType;
  std::vector<ExprPtr> Args;
  NewPriorityQueueExpr(TypeRef PQType, std::vector<ExprPtr> Args,
                       SourceLoc Loc)
      : Expr(NodeKind::NewPriorityQueueExpr, Loc),
        PQType(std::move(PQType)), Args(std::move(Args)) {}
  static bool classof(const ASTNode *N) {
    return N->kind() == NodeKind::NewPriorityQueueExpr;
  }
};

//===----------------------------------------------------------------------===//
// Statements
//===----------------------------------------------------------------------===//

class Stmt : public ASTNode {
public:
  std::string Label; ///< #label# attached to this statement, if any

  /// Virtual for the same reason as ~Expr: owned and deleted as StmtPtr.
  virtual ~Stmt() = default;

  static bool classof(const ASTNode *N) {
    return N->kind() >= NodeKind::FirstStmt &&
           N->kind() <= NodeKind::LastStmt;
  }

protected:
  Stmt(NodeKind Kind, SourceLoc Loc) : ASTNode(Kind, Loc) {}
};

using StmtPtr = std::unique_ptr<Stmt>;

class VarDeclStmt : public Stmt {
public:
  std::string Name;
  TypeRef DeclType;
  ExprPtr Init; // may be null
  VarDeclStmt(std::string Name, TypeRef DeclType, ExprPtr Init,
              SourceLoc Loc)
      : Stmt(NodeKind::VarDeclStmt, Loc), Name(std::move(Name)),
        DeclType(std::move(DeclType)), Init(std::move(Init)) {}
  static bool classof(const ASTNode *N) {
    return N->kind() == NodeKind::VarDeclStmt;
  }
};

class AssignStmt : public Stmt {
public:
  ExprPtr Target; // VarRefExpr or IndexExpr
  ExprPtr Value;
  AssignStmt(ExprPtr Target, ExprPtr Value, SourceLoc Loc)
      : Stmt(NodeKind::AssignStmt, Loc), Target(std::move(Target)),
        Value(std::move(Value)) {}
  static bool classof(const ASTNode *N) {
    return N->kind() == NodeKind::AssignStmt;
  }
};

class ExprStmt : public Stmt {
public:
  ExprPtr E;
  ExprStmt(ExprPtr E, SourceLoc Loc)
      : Stmt(NodeKind::ExprStmt, Loc), E(std::move(E)) {}
  static bool classof(const ASTNode *N) {
    return N->kind() == NodeKind::ExprStmt;
  }
};

class WhileStmt : public Stmt {
public:
  ExprPtr Cond;
  std::vector<StmtPtr> Body;
  WhileStmt(ExprPtr Cond, std::vector<StmtPtr> Body, SourceLoc Loc)
      : Stmt(NodeKind::WhileStmt, Loc), Cond(std::move(Cond)),
        Body(std::move(Body)) {}
  static bool classof(const ASTNode *N) {
    return N->kind() == NodeKind::WhileStmt;
  }
};

class IfStmt : public Stmt {
public:
  ExprPtr Cond;
  std::vector<StmtPtr> Then;
  std::vector<StmtPtr> Else;
  IfStmt(ExprPtr Cond, std::vector<StmtPtr> Then, std::vector<StmtPtr> Else,
         SourceLoc Loc)
      : Stmt(NodeKind::IfStmt, Loc), Cond(std::move(Cond)),
        Then(std::move(Then)), Else(std::move(Else)) {}
  static bool classof(const ASTNode *N) {
    return N->kind() == NodeKind::IfStmt;
  }
};

class DeleteStmt : public Stmt {
public:
  std::string Name;
  DeleteStmt(std::string Name, SourceLoc Loc)
      : Stmt(NodeKind::DeleteStmt, Loc), Name(std::move(Name)) {}
  static bool classof(const ASTNode *N) {
    return N->kind() == NodeKind::DeleteStmt;
  }
};

class ReturnStmt : public Stmt {
public:
  ExprPtr Value; // may be null
  ReturnStmt(ExprPtr Value, SourceLoc Loc)
      : Stmt(NodeKind::ReturnStmt, Loc), Value(std::move(Value)) {}
  static bool classof(const ASTNode *N) {
    return N->kind() == NodeKind::ReturnStmt;
  }
};

//===----------------------------------------------------------------------===//
// Declarations
//===----------------------------------------------------------------------===//

class Decl : public ASTNode {
public:
  std::string Name;

  static bool classof(const ASTNode *N) {
    return N->kind() >= NodeKind::FirstDecl &&
           N->kind() <= NodeKind::LastDecl;
  }

protected:
  Decl(NodeKind Kind, std::string Name, SourceLoc Loc)
      : ASTNode(Kind, Loc), Name(std::move(Name)) {}
};

class ElementDecl : public Decl {
public:
  ElementDecl(std::string Name, SourceLoc Loc)
      : Decl(NodeKind::ElementDecl, std::move(Name), Loc) {}
  static bool classof(const ASTNode *N) {
    return N->kind() == NodeKind::ElementDecl;
  }
};

class ConstDecl : public Decl {
public:
  TypeRef DeclType;
  ExprPtr Init; // may be null
  ConstDecl(std::string Name, TypeRef DeclType, ExprPtr Init, SourceLoc Loc)
      : Decl(NodeKind::ConstDecl, std::move(Name), Loc),
        DeclType(std::move(DeclType)), Init(std::move(Init)) {}
  static bool classof(const ASTNode *N) {
    return N->kind() == NodeKind::ConstDecl;
  }
};

/// Function parameter.
struct Param {
  std::string Name;
  TypeRef Type;
};

class FuncDecl : public Decl {
public:
  std::vector<Param> Params;
  TypeRef ReturnType{TypeKind::Void};
  std::vector<StmtPtr> Body;
  bool IsExtern = false;
  FuncDecl(std::string Name, std::vector<Param> Params,
           std::vector<StmtPtr> Body, SourceLoc Loc)
      : Decl(NodeKind::FuncDecl, std::move(Name), Loc),
        Params(std::move(Params)), Body(std::move(Body)) {}
  static bool classof(const ASTNode *N) {
    return N->kind() == NodeKind::FuncDecl;
  }
};

//===----------------------------------------------------------------------===//
// Program
//===----------------------------------------------------------------------===//

class Program : public ASTNode {
public:
  Program() : ASTNode(NodeKind::Program, SourceLoc{}) {}

  std::vector<std::unique_ptr<ElementDecl>> Elements;
  std::vector<std::unique_ptr<ConstDecl>> Consts;
  std::vector<std::unique_ptr<FuncDecl>> Funcs;

  /// Named lookups; null when absent.
  const FuncDecl *findFunc(const std::string &Name) const;
  const ConstDecl *findConst(const std::string &Name) const;

  static bool classof(const ASTNode *N) {
    return N->kind() == NodeKind::Program;
  }
};

} // namespace dsl
} // namespace graphit

#endif // GRAPHIT_DSL_AST_H
