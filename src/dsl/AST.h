//===- dsl/AST.h - GraphIt-subset abstract syntax tree ----------*- C++ -*-===//
//
// Part of graphit-ordered, an independent C++ reproduction of "Optimizing
// Ordered Graph Algorithms with GraphIt" (CGO 2020). MIT License.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// AST for the GraphIt algorithm-language subset with the priority-based
/// extension. Nodes use LLVM-style RTTI (a NodeKind discriminator plus
/// `classof`, consumed by `isa<>/cast<>/dyn_cast<>` from
/// support/Casting.h); ownership is by `std::unique_ptr` down the tree.
///
//===----------------------------------------------------------------------===//

#ifndef GRAPHIT_DSL_AST_H
#define GRAPHIT_DSL_AST_H

#include "dsl/Lexer.h"
#include "support/Casting.h"

#include <memory>
#include <string>
#include <vector>

namespace graphit {
namespace dsl {

/// Discriminator for the whole node hierarchy. Ranges matter: keep the
/// First/Last markers in sync when adding kinds.
enum class NodeKind {
  // Expressions.
  IntLiteralExpr,
  FloatLiteralExpr,
  BoolLiteralExpr,
  StringLiteralExpr,
  VarRefExpr,
  BinaryExpr,
  UnaryExpr,
  CallExpr,
  MethodCallExpr,
  IndexExpr,
  NewPriorityQueueExpr,
  FirstExpr = IntLiteralExpr,
  LastExpr = NewPriorityQueueExpr,

  // Statements.
  VarDeclStmt,
  AssignStmt,
  ExprStmt,
  WhileStmt,
  IfStmt,
  DeleteStmt,
  ReturnStmt,
  FirstStmt = VarDeclStmt,
  LastStmt = ReturnStmt,

  // Declarations.
  ElementDecl,
  ConstDecl,
  FuncDecl,
  FirstDecl = ElementDecl,
  LastDecl = FuncDecl,

  Program,
};

/// Structural type descriptor (the language's types are simple enough not
/// to need an AST of their own).
enum class TypeKind {
  Invalid,
  Int,
  Float,
  Bool,
  String,
  Vertex,
  Edge,
  VertexSet,      ///< vertexset{Element}
  EdgeSet,        ///< edgeset{Element}(Vertex, Vertex[, int])
  Vector,         ///< vector{Element}(scalar)
  PriorityQueue,  ///< priority_queue{Element}(scalar)
  Void,
};

/// A (possibly parameterized) type reference.
struct TypeRef {
  TypeKind Kind = TypeKind::Invalid;
  std::string Element;          ///< element name for set/vector/pq types
  std::vector<TypeKind> Params; ///< endpoint/value scalar kinds

  TypeRef() = default;
  explicit TypeRef(TypeKind K) : Kind(K) {}

  bool isNumeric() const {
    return Kind == TypeKind::Int || Kind == TypeKind::Float;
  }
  bool isWeightedEdgeSet() const {
    return Kind == TypeKind::EdgeSet && Params.size() >= 3;
  }
  bool operator==(const TypeRef &O) const {
    return Kind == O.Kind && Element == O.Element && Params == O.Params;
  }
  std::string toString() const;
};

//===----------------------------------------------------------------------===//
// Base node
//===----------------------------------------------------------------------===//

class ASTNode {
public:
  NodeKind kind() const { return Kind; }
  SourceLoc loc() const { return Loc; }

protected:
  ASTNode(NodeKind K, SourceLoc L) : Kind(K), Loc(L) {}
  // Non-virtual and protected: nothing deletes through ASTNode*. The
  // polymorphic owner roots (Expr, Stmt) carry the virtual destructors.
  ~ASTNode() = default;

private:
  NodeKind Kind;
  SourceLoc Loc;
};

//===----------------------------------------------------------------------===//
// Expressions
//===----------------------------------------------------------------------===//

class Expr : public ASTNode {
public:
  TypeRef Type; ///< filled in by Sema

  /// Virtual: expression nodes are owned and deleted as `ExprPtr`
  /// (unique_ptr<Expr>), so destruction must dispatch to the derived
  /// class — members like operand vectors and strings leak (and ASan's
  /// new-delete-type-mismatch fires) otherwise.
  virtual ~Expr() = default;

  static bool classof(const ASTNode *N) {
    return N->kind() >= NodeKind::FirstExpr &&
           N->kind() <= NodeKind::LastExpr;
  }

protected:
  Expr(NodeKind K, SourceLoc L) : ASTNode(K, L) {}
};

using ExprPtr = std::unique_ptr<Expr>;

class IntLiteralExpr : public Expr {
public:
  int64_t Value;
  IntLiteralExpr(int64_t V, SourceLoc L)
      : Expr(NodeKind::IntLiteralExpr, L), Value(V) {}
  static bool classof(const ASTNode *N) {
    return N->kind() == NodeKind::IntLiteralExpr;
  }
};

class FloatLiteralExpr : public Expr {
public:
  double Value;
  FloatLiteralExpr(double V, SourceLoc L)
      : Expr(NodeKind::FloatLiteralExpr, L), Value(V) {}
  static bool classof(const ASTNode *N) {
    return N->kind() == NodeKind::FloatLiteralExpr;
  }
};

class BoolLiteralExpr : public Expr {
public:
  bool Value;
  BoolLiteralExpr(bool V, SourceLoc L)
      : Expr(NodeKind::BoolLiteralExpr, L), Value(V) {}
  static bool classof(const ASTNode *N) {
    return N->kind() == NodeKind::BoolLiteralExpr;
  }
};

class StringLiteralExpr : public Expr {
public:
  std::string Value;
  StringLiteralExpr(std::string V, SourceLoc L)
      : Expr(NodeKind::StringLiteralExpr, L), Value(std::move(V)) {}
  static bool classof(const ASTNode *N) {
    return N->kind() == NodeKind::StringLiteralExpr;
  }
};

class VarRefExpr : public Expr {
public:
  std::string Name;
  VarRefExpr(std::string N, SourceLoc L)
      : Expr(NodeKind::VarRefExpr, L), Name(std::move(N)) {}
  static bool classof(const ASTNode *N) {
    return N->kind() == NodeKind::VarRefExpr;
  }
};

class BinaryExpr : public Expr {
public:
  enum class OpKind { Add, Sub, Mul, Div, Eq, Ne, Lt, Le, Gt, Ge, And, Or };
  OpKind Op;
  ExprPtr LHS, RHS;
  BinaryExpr(OpKind O, ExprPtr A, ExprPtr B, SourceLoc L)
      : Expr(NodeKind::BinaryExpr, L), Op(O), LHS(std::move(A)),
        RHS(std::move(B)) {}
  static bool classof(const ASTNode *N) {
    return N->kind() == NodeKind::BinaryExpr;
  }
};

/// Spelling of a binary operator ("+", "==", ...).
const char *binaryOpSpelling(BinaryExpr::OpKind Op);

class UnaryExpr : public Expr {
public:
  enum class OpKind { Neg, Not };
  OpKind Op;
  ExprPtr Operand;
  UnaryExpr(OpKind O, ExprPtr E, SourceLoc L)
      : Expr(NodeKind::UnaryExpr, L), Op(O), Operand(std::move(E)) {}
  static bool classof(const ASTNode *N) {
    return N->kind() == NodeKind::UnaryExpr;
  }
};

/// Free-function call: user functions and intrinsics (`load`, `atoi`).
class CallExpr : public Expr {
public:
  std::string Callee;
  std::vector<ExprPtr> Args;
  CallExpr(std::string C, std::vector<ExprPtr> A, SourceLoc L)
      : Expr(NodeKind::CallExpr, L), Callee(std::move(C)),
        Args(std::move(A)) {}
  static bool classof(const ASTNode *N) {
    return N->kind() == NodeKind::CallExpr;
  }
};

/// Method call `base.method(args)`, possibly chained
/// (`edges.from(bucket).applyUpdatePriority(f)`).
class MethodCallExpr : public Expr {
public:
  ExprPtr Base;
  std::string Method;
  std::vector<ExprPtr> Args;
  MethodCallExpr(ExprPtr B, std::string M, std::vector<ExprPtr> A,
                 SourceLoc L)
      : Expr(NodeKind::MethodCallExpr, L), Base(std::move(B)),
        Method(std::move(M)), Args(std::move(A)) {}
  static bool classof(const ASTNode *N) {
    return N->kind() == NodeKind::MethodCallExpr;
  }
};

/// Indexing `vec[expr]` (also `argv[i]`).
class IndexExpr : public Expr {
public:
  ExprPtr Base;
  ExprPtr Index;
  IndexExpr(ExprPtr B, ExprPtr I, SourceLoc L)
      : Expr(NodeKind::IndexExpr, L), Base(std::move(B)),
        Index(std::move(I)) {}
  static bool classof(const ASTNode *N) {
    return N->kind() == NodeKind::IndexExpr;
  }
};

/// `new priority_queue{Vertex}(int)(allow_coarsening, "lower_first",
/// priority_vector, start_vertex)` — Table 1's constructor.
class NewPriorityQueueExpr : public Expr {
public:
  TypeRef PQType;
  std::vector<ExprPtr> Args;
  NewPriorityQueueExpr(TypeRef T, std::vector<ExprPtr> A, SourceLoc L)
      : Expr(NodeKind::NewPriorityQueueExpr, L), PQType(std::move(T)),
        Args(std::move(A)) {}
  static bool classof(const ASTNode *N) {
    return N->kind() == NodeKind::NewPriorityQueueExpr;
  }
};

//===----------------------------------------------------------------------===//
// Statements
//===----------------------------------------------------------------------===//

class Stmt : public ASTNode {
public:
  std::string Label; ///< #label# attached to this statement, if any

  /// Virtual for the same reason as ~Expr: owned and deleted as StmtPtr.
  virtual ~Stmt() = default;

  static bool classof(const ASTNode *N) {
    return N->kind() >= NodeKind::FirstStmt &&
           N->kind() <= NodeKind::LastStmt;
  }

protected:
  Stmt(NodeKind K, SourceLoc L) : ASTNode(K, L) {}
};

using StmtPtr = std::unique_ptr<Stmt>;

class VarDeclStmt : public Stmt {
public:
  std::string Name;
  TypeRef DeclType;
  ExprPtr Init; // may be null
  VarDeclStmt(std::string N, TypeRef T, ExprPtr I, SourceLoc L)
      : Stmt(NodeKind::VarDeclStmt, L), Name(std::move(N)),
        DeclType(std::move(T)), Init(std::move(I)) {}
  static bool classof(const ASTNode *N) {
    return N->kind() == NodeKind::VarDeclStmt;
  }
};

class AssignStmt : public Stmt {
public:
  ExprPtr Target; // VarRefExpr or IndexExpr
  ExprPtr Value;
  AssignStmt(ExprPtr T, ExprPtr V, SourceLoc L)
      : Stmt(NodeKind::AssignStmt, L), Target(std::move(T)),
        Value(std::move(V)) {}
  static bool classof(const ASTNode *N) {
    return N->kind() == NodeKind::AssignStmt;
  }
};

class ExprStmt : public Stmt {
public:
  ExprPtr E;
  ExprStmt(ExprPtr Ex, SourceLoc L)
      : Stmt(NodeKind::ExprStmt, L), E(std::move(Ex)) {}
  static bool classof(const ASTNode *N) {
    return N->kind() == NodeKind::ExprStmt;
  }
};

class WhileStmt : public Stmt {
public:
  ExprPtr Cond;
  std::vector<StmtPtr> Body;
  WhileStmt(ExprPtr C, std::vector<StmtPtr> B, SourceLoc L)
      : Stmt(NodeKind::WhileStmt, L), Cond(std::move(C)),
        Body(std::move(B)) {}
  static bool classof(const ASTNode *N) {
    return N->kind() == NodeKind::WhileStmt;
  }
};

class IfStmt : public Stmt {
public:
  ExprPtr Cond;
  std::vector<StmtPtr> Then;
  std::vector<StmtPtr> Else;
  IfStmt(ExprPtr C, std::vector<StmtPtr> T, std::vector<StmtPtr> E,
         SourceLoc L)
      : Stmt(NodeKind::IfStmt, L), Cond(std::move(C)), Then(std::move(T)),
        Else(std::move(E)) {}
  static bool classof(const ASTNode *N) {
    return N->kind() == NodeKind::IfStmt;
  }
};

class DeleteStmt : public Stmt {
public:
  std::string Name;
  DeleteStmt(std::string N, SourceLoc L)
      : Stmt(NodeKind::DeleteStmt, L), Name(std::move(N)) {}
  static bool classof(const ASTNode *N) {
    return N->kind() == NodeKind::DeleteStmt;
  }
};

class ReturnStmt : public Stmt {
public:
  ExprPtr Value; // may be null
  ReturnStmt(ExprPtr V, SourceLoc L)
      : Stmt(NodeKind::ReturnStmt, L), Value(std::move(V)) {}
  static bool classof(const ASTNode *N) {
    return N->kind() == NodeKind::ReturnStmt;
  }
};

//===----------------------------------------------------------------------===//
// Declarations
//===----------------------------------------------------------------------===//

class Decl : public ASTNode {
public:
  std::string Name;

  static bool classof(const ASTNode *N) {
    return N->kind() >= NodeKind::FirstDecl &&
           N->kind() <= NodeKind::LastDecl;
  }

protected:
  Decl(NodeKind K, std::string N, SourceLoc L)
      : ASTNode(K, L), Name(std::move(N)) {}
};

class ElementDecl : public Decl {
public:
  ElementDecl(std::string N, SourceLoc L)
      : Decl(NodeKind::ElementDecl, std::move(N), L) {}
  static bool classof(const ASTNode *N) {
    return N->kind() == NodeKind::ElementDecl;
  }
};

class ConstDecl : public Decl {
public:
  TypeRef DeclType;
  ExprPtr Init; // may be null
  ConstDecl(std::string N, TypeRef T, ExprPtr I, SourceLoc L)
      : Decl(NodeKind::ConstDecl, std::move(N), L), DeclType(std::move(T)),
        Init(std::move(I)) {}
  static bool classof(const ASTNode *N) {
    return N->kind() == NodeKind::ConstDecl;
  }
};

/// Function parameter.
struct Param {
  std::string Name;
  TypeRef Type;
};

class FuncDecl : public Decl {
public:
  std::vector<Param> Params;
  TypeRef ReturnType{TypeKind::Void};
  std::vector<StmtPtr> Body;
  bool IsExtern = false;
  FuncDecl(std::string N, std::vector<Param> P, std::vector<StmtPtr> B,
           SourceLoc L)
      : Decl(NodeKind::FuncDecl, std::move(N), L), Params(std::move(P)),
        Body(std::move(B)) {}
  static bool classof(const ASTNode *N) {
    return N->kind() == NodeKind::FuncDecl;
  }
};

//===----------------------------------------------------------------------===//
// Program
//===----------------------------------------------------------------------===//

class Program : public ASTNode {
public:
  Program() : ASTNode(NodeKind::Program, SourceLoc{}) {}

  std::vector<std::unique_ptr<ElementDecl>> Elements;
  std::vector<std::unique_ptr<ConstDecl>> Consts;
  std::vector<std::unique_ptr<FuncDecl>> Funcs;

  /// Named lookups; null when absent.
  const FuncDecl *findFunc(const std::string &Name) const;
  const ConstDecl *findConst(const std::string &Name) const;

  static bool classof(const ASTNode *N) {
    return N->kind() == NodeKind::Program;
  }
};

} // namespace dsl
} // namespace graphit

#endif // GRAPHIT_DSL_AST_H
