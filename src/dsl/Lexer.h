//===- dsl/Lexer.h - GraphIt-subset tokenizer -------------------*- C++ -*-===//
//
// Part of graphit-ordered, an independent C++ reproduction of "Optimizing
// Ordered Graph Algorithms with GraphIt" (CGO 2020). MIT License.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Tokenizer for the GraphIt algorithm-language subset used by the
/// priority-based extension (the language of Fig. 3 and the paper's k-core
/// example). `%` line comments, `#label#` markers, string literals for
/// priority-queue constructor options.
///
//===----------------------------------------------------------------------===//

#ifndef GRAPHIT_DSL_LEXER_H
#define GRAPHIT_DSL_LEXER_H

#include <cstdint>
#include <string>
#include <vector>

namespace graphit {
namespace dsl {

/// Token kinds. Keywords carry their own kind; punctuation likewise.
enum class TokenKind {
  Eof,
  Identifier,
  IntLiteral,
  FloatLiteral,
  StringLiteral,
  Label, // #name#

  // Keywords.
  KwElement,
  KwConst,
  KwFunc,
  KwExtern,
  KwVar,
  KwWhile,
  KwIf,
  KwElif,
  KwElse,
  KwEnd,
  KwDelete,
  KwNew,
  KwTrue,
  KwFalse,
  KwAnd,
  KwOr,
  KwNot,
  KwReturn,
  KwEdgeSet,
  KwVertexSet,
  KwVector,
  KwPriorityQueue,
  KwInt,
  KwFloat,
  KwBool,

  // Punctuation and operators.
  LParen,
  RParen,
  LBrace,
  RBrace,
  LBracket,
  RBracket,
  Comma,
  Semicolon,
  Colon,
  Dot,
  Assign,
  Plus,
  Minus,
  Star,
  Slash,
  Percent,
  EqEq,
  NotEq,
  Less,
  LessEq,
  Greater,
  GreaterEq,
};

/// Human-readable token-kind name (diagnostics, tests).
const char *tokenKindName(TokenKind Kind);

/// Source position, 1-based.
struct SourceLoc {
  int Line = 1;
  int Column = 1;
};

/// One lexed token. `Text` holds the identifier/literal spelling.
struct Token {
  TokenKind Kind = TokenKind::Eof;
  std::string Text;
  int64_t IntValue = 0;
  double FloatValue = 0.0;
  SourceLoc Loc;

  bool is(TokenKind K) const { return Kind == K; }
};

/// Lexes \p Source completely. On a lexical error, the token stream ends
/// with a diagnostic recorded in \p ErrorOut (empty on success).
std::vector<Token> lex(const std::string &Source, std::string &ErrorOut);

} // namespace dsl
} // namespace graphit

#endif // GRAPHIT_DSL_LEXER_H
