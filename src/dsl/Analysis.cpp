//===- dsl/Analysis.cpp - Priority-update program analyses ----------------===//
//
// Part of graphit-ordered, an independent C++ reproduction of "Optimizing
// Ordered Graph Algorithms with GraphIt" (CGO 2020). MIT License.
//
//===----------------------------------------------------------------------===//

#include "dsl/Analysis.h"

#include <algorithm>
#include <functional>

using namespace graphit;
using namespace graphit::dsl;

namespace {

/// Applies \p Fn to every expression under \p E (pre-order).
void forEachExpr(const Expr *E, const std::function<void(const Expr *)> &Fn) {
  if (!E)
    return;
  Fn(E);
  if (auto *B = dyn_cast<BinaryExpr>(E)) {
    forEachExpr(B->LHS.get(), Fn);
    forEachExpr(B->RHS.get(), Fn);
    return;
  }
  if (auto *U = dyn_cast<UnaryExpr>(E)) {
    forEachExpr(U->Operand.get(), Fn);
    return;
  }
  if (auto *C = dyn_cast<CallExpr>(E)) {
    for (const ExprPtr &A : C->Args)
      forEachExpr(A.get(), Fn);
    return;
  }
  if (auto *M = dyn_cast<MethodCallExpr>(E)) {
    forEachExpr(M->Base.get(), Fn);
    for (const ExprPtr &A : M->Args)
      forEachExpr(A.get(), Fn);
    return;
  }
  if (auto *I = dyn_cast<IndexExpr>(E)) {
    forEachExpr(I->Base.get(), Fn);
    forEachExpr(I->Index.get(), Fn);
    return;
  }
  if (auto *N = dyn_cast<NewPriorityQueueExpr>(E)) {
    for (const ExprPtr &A : N->Args)
      forEachExpr(A.get(), Fn);
    return;
  }
}

/// Applies \p Fn to every expression in \p Stmts, recursing into blocks.
void forEachExprInStmts(const std::vector<StmtPtr> &Stmts,
                        const std::function<void(const Expr *)> &Fn) {
  for (const StmtPtr &SP : Stmts) {
    const Stmt *S = SP.get();
    if (auto *VD = dyn_cast<VarDeclStmt>(S)) {
      forEachExpr(VD->Init.get(), Fn);
    } else if (auto *AS = dyn_cast<AssignStmt>(S)) {
      forEachExpr(AS->Target.get(), Fn);
      forEachExpr(AS->Value.get(), Fn);
    } else if (auto *ES = dyn_cast<ExprStmt>(S)) {
      forEachExpr(ES->E.get(), Fn);
    } else if (auto *WS = dyn_cast<WhileStmt>(S)) {
      forEachExpr(WS->Cond.get(), Fn);
      forEachExprInStmts(WS->Body, Fn);
    } else if (auto *IS = dyn_cast<IfStmt>(S)) {
      forEachExpr(IS->Cond.get(), Fn);
      forEachExprInStmts(IS->Then, Fn);
      forEachExprInStmts(IS->Else, Fn);
    } else if (auto *RS = dyn_cast<ReturnStmt>(S)) {
      forEachExpr(RS->Value.get(), Fn);
    }
  }
}

/// Matches a compile-time integer constant (literal or negated literal).
bool matchIntConstant(const Expr *E, int64_t &Out) {
  if (const auto *I = dyn_cast<IntLiteralExpr>(E)) {
    Out = I->Value;
    return true;
  }
  if (const auto *U = dyn_cast<UnaryExpr>(E)) {
    if (U->Op == UnaryExpr::OpKind::Neg) {
      int64_t Inner;
      if (matchIntConstant(U->Operand.get(), Inner)) {
        Out = -Inner;
        return true;
      }
    }
  }
  return false;
}

/// True if \p E reads `pq.getCurrentPriority()` (possibly through a local
/// variable is NOT tracked — the k-core pattern passes it directly or via
/// a var initialized from it; we check both one level deep).
bool readsCurrentPriority(const Expr *E) {
  bool Found = false;
  forEachExpr(E, [&](const Expr *X) {
    if (const auto *M = dyn_cast<MethodCallExpr>(X))
      if (M->Method == "getCurrentPriority" ||
          M->Method == "get_current_priority")
        Found = true;
  });
  return Found;
}

/// The variables (by name) initialized from pq.getCurrentPriority() in a
/// UDF body, so `var k = pq.getCurrentPriority(); ... sum(dst, -1, k)` is
/// recognized.
std::vector<std::string>
currentPriorityAliases(const std::vector<StmtPtr> &Body) {
  std::vector<std::string> Names;
  for (const StmtPtr &SP : Body)
    if (const auto *VD = dyn_cast<VarDeclStmt>(SP.get()))
      if (VD->Init && readsCurrentPriority(VD->Init.get()))
        Names.push_back(VD->Name);
  return Names;
}

/// Name of the base variable if \p E is a plain variable reference.
std::string baseVarName(const Expr *E) {
  if (const auto *V = dyn_cast<VarRefExpr>(E))
    return V->Name;
  return "";
}

UDFInfo analyzeUDF(const FuncDecl &F, const SemaResult &Sema) {
  UDFInfo Info;
  Info.F = &F;
  std::vector<std::string> CurPriAliases = currentPriorityAliases(F.Body);

  forEachExprInStmts(F.Body, [&](const Expr *E) {
    const auto *M = dyn_cast<MethodCallExpr>(E);
    if (!M)
      return;
    PriorityUpdateInfo::UpdateOp Op;
    if (M->Method == "updatePriorityMin")
      Op = PriorityUpdateInfo::UpdateOp::Min;
    else if (M->Method == "updatePriorityMax")
      Op = PriorityUpdateInfo::UpdateOp::Max;
    else if (M->Method == "updatePrioritySum")
      Op = PriorityUpdateInfo::UpdateOp::Sum;
    else
      return;
    std::string PQ = baseVarName(M->Base.get());
    if (Sema.globalType(PQ).Kind != TypeKind::PriorityQueue)
      return;

    PriorityUpdateInfo U;
    U.Op = Op;
    U.Call = M;
    U.PQName = PQ;
    if (!M->Args.empty())
      U.TargetParam = baseVarName(M->Args[0].get());
    if (Op == PriorityUpdateInfo::UpdateOp::Sum && M->Args.size() >= 2) {
      U.IsConstantSum = matchIntConstant(M->Args[1].get(), U.SumConst);
      if (M->Args.size() >= 3) {
        const Expr *Threshold = M->Args[2].get();
        std::string Name = baseVarName(Threshold);
        U.ThresholdIsCurrentPriority =
            readsCurrentPriority(Threshold) ||
            std::find(CurPriAliases.begin(), CurPriAliases.end(), Name) !=
                CurPriAliases.end();
      }
    }
    Info.Updates.push_back(U);
  });
  return Info;
}

/// Pattern-matches `<expr> == false` / `false == <expr>` / `not <expr>`,
/// returning the inner expression, or null.
const Expr *matchNegation(const Expr *Cond) {
  if (const auto *B = dyn_cast<BinaryExpr>(Cond)) {
    if (B->Op != BinaryExpr::OpKind::Eq)
      return nullptr;
    if (const auto *L = dyn_cast<BoolLiteralExpr>(B->LHS.get()))
      return !L->Value ? B->RHS.get() : nullptr;
    if (const auto *R = dyn_cast<BoolLiteralExpr>(B->RHS.get()))
      return !R->Value ? B->LHS.get() : nullptr;
    return nullptr;
  }
  if (const auto *U = dyn_cast<UnaryExpr>(Cond))
    if (U->Op == UnaryExpr::OpKind::Not)
      return U->Operand.get();
  return nullptr;
}

/// Counts references to variable \p Name in the loop body.
int countVarUses(const WhileStmt &Loop, const std::string &Name) {
  int Uses = 0;
  forEachExprInStmts(Loop.Body, [&](const Expr *E) {
    if (const auto *V = dyn_cast<VarRefExpr>(E))
      if (V->Name == Name)
        ++Uses;
  });
  return Uses;
}

/// Collects the pq-condition calls in a loop condition of the form
/// `pq.finished() == false [and pq.finishedVertex(v) == false]`.
/// \returns the negated pq method calls, or empty when unrecognized.
std::vector<const MethodCallExpr *> matchLoopCondition(const Expr *Cond) {
  std::vector<const MethodCallExpr *> Calls;
  if (const auto *B = dyn_cast<BinaryExpr>(Cond)) {
    if (B->Op == BinaryExpr::OpKind::And) {
      auto L = matchLoopCondition(B->LHS.get());
      auto R = matchLoopCondition(B->RHS.get());
      if (L.empty() || R.empty())
        return {};
      L.insert(L.end(), R.begin(), R.end());
      return L;
    }
  }
  if (const Expr *Inner = matchNegation(Cond))
    if (const auto *Call = dyn_cast<MethodCallExpr>(Inner))
      return {Call};
  return {};
}

void analyzeLoop(const WhileStmt &Loop, const SemaResult &Sema,
                 ProgramAnalysis &Out) {
  std::vector<const MethodCallExpr *> Conds =
      matchLoopCondition(Loop.Cond.get());
  if (Conds.empty() || Conds.size() > 2)
    return;

  OrderedLoopInfo Info;
  Info.Loop = &Loop;
  for (const MethodCallExpr *CondCall : Conds) {
    std::string PQ = baseVarName(CondCall->Base.get());
    if (Sema.globalType(PQ).Kind != TypeKind::PriorityQueue)
      return;
    if (!Info.PQName.empty() && Info.PQName != PQ)
      return; // two different queues: not the pattern
    Info.PQName = PQ;
    if (CondCall->Method == "finishedVertex" && CondCall->Args.size() == 1)
      Info.StopVertexVar = baseVarName(CondCall->Args[0].get());
    else if (CondCall->Method != "finished")
      return;
  }

  // Recognize the body: bucket decl, apply statement, optional delete.
  int OtherStmts = 0;
  for (const StmtPtr &SP : Loop.Body) {
    const Stmt *S = SP.get();
    if (const auto *VD = dyn_cast<VarDeclStmt>(S)) {
      const auto *Init =
          VD->Init ? dyn_cast<MethodCallExpr>(VD->Init.get()) : nullptr;
      if (Init &&
          (Init->Method == "dequeueReadySet" ||
           Init->Method == "dequeue_ready_set") &&
          baseVarName(Init->Base.get()) == Info.PQName) {
        Info.BucketVar = VD->Name;
        continue;
      }
      ++OtherStmts;
      continue;
    }
    if (const auto *ES = dyn_cast<ExprStmt>(S)) {
      const auto *Apply = dyn_cast<MethodCallExpr>(ES->E.get());
      if (Apply && Apply->Method == "applyUpdatePriority" &&
          Apply->Args.size() == 1) {
        // Base should be edges.from(bucket) or a plain edgeset.
        const Expr *Base = Apply->Base.get();
        if (const auto *From = dyn_cast<MethodCallExpr>(Base)) {
          if (From->Method == "from" && From->Args.size() == 1) {
            Info.EdgesetName = baseVarName(From->Base.get());
          }
        } else {
          Info.EdgesetName = baseVarName(Base);
        }
        Info.UDFName = baseVarName(Apply->Args[0].get());
        Info.Label = ES->Label;
        continue;
      }
      ++OtherStmts;
      continue;
    }
    if (const auto *DS = dyn_cast<DeleteStmt>(S)) {
      if (DS->Name == Info.BucketVar)
        continue;
      ++OtherStmts;
      continue;
    }
    ++OtherStmts;
  }

  if (Info.UDFName.empty() || Info.EdgesetName.empty())
    return; // not an ordered edge-apply loop

  // Eager legality (§5.2): the bucket's only uses are the dequeue, the
  // from(), and the delete, and the loop holds nothing else.
  bool BucketUsesOk =
      Info.BucketVar.empty() || countVarUses(Loop, Info.BucketVar) == 1;
  Info.EagerLegal = OtherStmts == 0 && BucketUsesOk;
  Out.Loops.push_back(Info);
  Out.Notes.push_back(
      "ordered loop over pq '" + Info.PQName + "' applying '" +
      Info.UDFName + "'" +
      (Info.EagerLegal ? " [eager transformation legal]"
                       : " [eager transformation NOT legal]"));
}

void findLoops(const std::vector<StmtPtr> &Stmts, const SemaResult &Sema,
               ProgramAnalysis &Out) {
  for (const StmtPtr &SP : Stmts) {
    if (const auto *WS = dyn_cast<WhileStmt>(SP.get())) {
      analyzeLoop(*WS, Sema, Out);
      findLoops(WS->Body, Sema, Out);
    } else if (const auto *IS = dyn_cast<IfStmt>(SP.get())) {
      findLoops(IS->Then, Sema, Out);
      findLoops(IS->Else, Sema, Out);
    }
  }
}

} // namespace

ProgramAnalysis graphit::dsl::analyzeProgram(const Program &Prog,
                                             const SemaResult &Sema) {
  ProgramAnalysis Out;
  for (const auto &F : Prog.Funcs) {
    UDFInfo Info = analyzeUDF(*F, Sema);
    if (!Info.Updates.empty()) {
      Out.Notes.push_back(
          "function '" + F->Name + "': " +
          std::to_string(Info.Updates.size()) + " priority update(s)" +
          (Info.histogramEligible() ? ", histogram-eligible" : ""));
      Out.UDFs.push_back(std::move(Info));
    }
  }
  for (const auto &F : Prog.Funcs)
    if (F->Name == "main")
      findLoops(F->Body, Sema, Out);
  return Out;
}
