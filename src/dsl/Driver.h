//===- dsl/Driver.h - Compiler driver ---------------------------*- C++ -*-===//
//
// Part of graphit-ordered, an independent C++ reproduction of "Optimizing
// Ordered Graph Algorithms with GraphIt" (CGO 2020). MIT License.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Convenience entry points combining the frontend phases: lex/parse,
/// semantic analysis, the priority-update analyses, C++ code generation,
/// and interpretation. Used by the `dslc` example tool, the test suite,
/// and the Table 5 line-count benchmark.
///
//===----------------------------------------------------------------------===//

#ifndef GRAPHIT_DSL_DRIVER_H
#define GRAPHIT_DSL_DRIVER_H

#include "dsl/Analysis.h"
#include "dsl/CodeGen.h"
#include "dsl/Interpreter.h"
#include "dsl/Parser.h"
#include "dsl/Sema.h"

#include <memory>
#include <string>

namespace graphit {
namespace dsl {

/// Everything the frontend produces for one source file.
struct FrontendBundle {
  std::unique_ptr<Program> Prog;
  SemaResult Sema;
  ProgramAnalysis Analysis;
  std::string Error; ///< first diagnostic; empty on success

  bool ok() const { return Error.empty() && Prog != nullptr; }
};

/// Lex + parse + sema + analyses.
FrontendBundle runFrontend(const std::string &Source);

/// Frontend + code generation under \p Schedules.
GeneratedCode compileSource(const std::string &Source,
                            const ScheduleMap &Schedules,
                            std::string *ErrorOut = nullptr);

/// Frontend + interpretation against \p G.
InterpResult runSource(const std::string &Source, const Graph &G,
                       const InterpOptions &Options);

/// Reads a whole file; aborts on IO failure (trusted local files).
std::string readFileOrDie(const std::string &Path);

} // namespace dsl
} // namespace graphit

#endif // GRAPHIT_DSL_DRIVER_H
