//===- dsl/Sema.h - Symbol resolution and type checking ---------*- C++ -*-===//
//
// Part of graphit-ordered, an independent C++ reproduction of "Optimizing
// Ordered Graph Algorithms with GraphIt" (CGO 2020). MIT License.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Symbol resolution and type checking for the GraphIt subset. Annotates
/// `Expr::Type` in place, builds the global symbol table consumed by the
/// analyses (dsl/Analysis.h), code generator, and interpreter, and
/// reports positioned diagnostics.
///
//===----------------------------------------------------------------------===//

#ifndef GRAPHIT_DSL_SEMA_H
#define GRAPHIT_DSL_SEMA_H

#include "dsl/AST.h"

#include <map>
#include <string>
#include <vector>

namespace graphit {
namespace dsl {

/// Results of semantic analysis over one program.
struct SemaResult {
  /// Global name -> type (consts and elements).
  std::map<std::string, TypeRef> Globals;
  /// Diagnostics ("line L:C: message"); empty means success.
  std::vector<std::string> Errors;

  bool ok() const { return Errors.empty(); }

  /// Type of a global, or Invalid.
  TypeRef globalType(const std::string &Name) const {
    auto It = Globals.find(Name);
    return It == Globals.end() ? TypeRef() : It->second;
  }
};

/// Runs semantic analysis; mutates `Expr::Type` annotations in \p Prog.
SemaResult analyzeSemantics(Program &Prog);

} // namespace dsl
} // namespace graphit

#endif // GRAPHIT_DSL_SEMA_H
