//===- dsl/Interpreter.h - Direct execution of GraphIt programs -*- C++ -*-===//
//
// Part of graphit-ordered, an independent C++ reproduction of "Optimizing
// Ordered Graph Algorithms with GraphIt" (CGO 2020). MIT License.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// A tree-walking interpreter that runs priority-extension GraphIt
/// programs directly against this repository's runtime, so the full
/// pipeline (parse -> sema -> analysis -> execute) is testable without a
/// C++ compile step. Execution strategy mirrors the compiler:
///
///  * ordered loops that the analysis proves eager-legal run through
///    `eagerOrderedProcess` (with bucket fusion per the schedule), with
///    the user-defined function evaluated per edge;
///  * everything else executes through the PriorityQueue facade — the
///    lazy bucket-update semantics of §3.1.
///
/// The interpreter exists for correctness and tooling, not speed; the
/// generated C++ (dsl/CodeGen.h) is the performance path.
///
//===----------------------------------------------------------------------===//

#ifndef GRAPHIT_DSL_INTERPRETER_H
#define GRAPHIT_DSL_INTERPRETER_H

#include "core/OrderedProcess.h"
#include "core/Schedule.h"
#include "dsl/Analysis.h"
#include "dsl/CodeGen.h"
#include "dsl/Sema.h"
#include "graph/Graph.h"

#include <map>
#include <string>
#include <vector>

namespace graphit {
namespace dsl {

/// Inputs for one interpreted run.
struct InterpOptions {
  /// Per-label schedules ("" is the default label).
  ScheduleMap Schedules;
  /// Program arguments; Args[0] stands for argv[1] in the program (the
  /// graph path is virtual — the Graph is passed directly).
  std::vector<std::string> Args;
  /// Data for `load_vertex_data(path)`, keyed by the path string.
  std::map<std::string, std::vector<Priority>> VertexData;
};

/// Results: the final contents of every global vector, plus engine stats
/// from the last ordered loop executed.
struct InterpResult {
  bool Ok = false;
  std::string Error;
  std::map<std::string, std::vector<Priority>> Vectors;
  OrderedStats Stats;
  bool UsedEagerEngine = false;
};

/// Runs \p Prog (already Sema-annotated and analyzed) against \p G.
InterpResult interpret(const Program &Prog, const SemaResult &Sema,
                       const ProgramAnalysis &Analysis, const Graph &G,
                       const InterpOptions &Options);

} // namespace dsl
} // namespace graphit

#endif // GRAPHIT_DSL_INTERPRETER_H
