//===- dsl/Parser.h - GraphIt-subset recursive-descent parser ---*- C++ -*-===//
//
// Part of graphit-ordered, an independent C++ reproduction of "Optimizing
// Ordered Graph Algorithms with GraphIt" (CGO 2020). MIT License.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Recursive-descent parser for the GraphIt algorithm-language subset (the
/// language of Fig. 3). Produces a `Program` AST or a positioned
/// diagnostic.
///
//===----------------------------------------------------------------------===//

#ifndef GRAPHIT_DSL_PARSER_H
#define GRAPHIT_DSL_PARSER_H

#include "dsl/AST.h"

#include <memory>
#include <string>

namespace graphit {
namespace dsl {

/// Outcome of a parse: a program, or an error message ("line L:C: ...").
struct ParseResult {
  std::unique_ptr<Program> Prog;
  std::string Error;

  bool ok() const { return Prog != nullptr && Error.empty(); }
};

/// Parses a whole source file.
ParseResult parseProgram(const std::string &Source);

} // namespace dsl
} // namespace graphit

#endif // GRAPHIT_DSL_PARSER_H
