//===- dsl/CodeGen.h - C++ code generation ----------------------*- C++ -*-===//
//
// Part of graphit-ordered, an independent C++ reproduction of "Optimizing
// Ordered Graph Algorithms with GraphIt" (CGO 2020). MIT License.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// C++ code generation for the priority-based extension (§5, Fig. 9).
/// Given a Sema-annotated program, the analysis results, and per-label
/// schedules, emits a complete translation unit against this repository's
/// runtime:
///
///  * recognized min-update ordered loops lower to the **eager** ordered
///    processing operator (with or without bucket fusion) or to the
///    **lazy** bucket-update loop with SparsePush/DensePull traversal,
///    with atomics and deduplication inserted per the analysis —
///    reproducing the three generated-code variants of Fig. 9;
///  * recognized constant-sum loops under `lazy_constant_sum` emit the
///    histogram-transformed function of Fig. 10;
///  * anything else lowers to the generic PriorityQueue facade — always
///    correct, just not specialized.
///
//===----------------------------------------------------------------------===//

#ifndef GRAPHIT_DSL_CODEGEN_H
#define GRAPHIT_DSL_CODEGEN_H

#include "core/Schedule.h"
#include "dsl/Analysis.h"

#include <map>
#include <string>

namespace graphit {
namespace dsl {

/// Per-label schedules: `configApplyPriorityUpdate("s1", ...)`. The empty
/// label "" provides the default for unlabeled statements.
using ScheduleMap = std::map<std::string, Schedule>;

/// Result of code generation.
struct GeneratedCode {
  std::string Cpp;                ///< complete C++ translation unit
  std::vector<std::string> Notes; ///< codegen decisions (for tests/logs)
  bool UsedEagerEngine = false;
  bool UsedLazyEngine = false;
  bool UsedHistogram = false;
  bool UsedFacadeFallback = false;
};

/// Generates C++ for \p Prog. \p Sched supplies per-label schedules.
GeneratedCode generateCpp(const Program &Prog, const SemaResult &Sema,
                          const ProgramAnalysis &Analysis,
                          const ScheduleMap &Sched);

/// Schedule for \p Label under \p Map ("" default, else Schedule()).
Schedule scheduleForLabel(const ScheduleMap &Map, const std::string &Label);

} // namespace dsl
} // namespace graphit

#endif // GRAPHIT_DSL_CODEGEN_H
