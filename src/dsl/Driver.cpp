//===- dsl/Driver.cpp - Compiler driver ------------------------------------===//
//
// Part of graphit-ordered, an independent C++ reproduction of "Optimizing
// Ordered Graph Algorithms with GraphIt" (CGO 2020). MIT License.
//
//===----------------------------------------------------------------------===//

#include "dsl/Driver.h"

#include "support/Abort.h"

#include <cstdio>
#include <memory>

using namespace graphit;
using namespace graphit::dsl;

FrontendBundle graphit::dsl::runFrontend(const std::string &Source) {
  FrontendBundle B;
  ParseResult P = parseProgram(Source);
  if (!P.ok()) {
    B.Error = P.Error.empty() ? "parse failed" : P.Error;
    return B;
  }
  B.Prog = std::move(P.Prog);
  B.Sema = analyzeSemantics(*B.Prog);
  if (!B.Sema.ok()) {
    B.Error = B.Sema.Errors.front();
    return B;
  }
  B.Analysis = analyzeProgram(*B.Prog, B.Sema);
  return B;
}

GeneratedCode graphit::dsl::compileSource(const std::string &Source,
                                          const ScheduleMap &Schedules,
                                          std::string *ErrorOut) {
  FrontendBundle B = runFrontend(Source);
  if (!B.ok()) {
    if (ErrorOut)
      *ErrorOut = B.Error;
    return GeneratedCode();
  }
  if (ErrorOut)
    ErrorOut->clear();
  return generateCpp(*B.Prog, B.Sema, B.Analysis, Schedules);
}

InterpResult graphit::dsl::runSource(const std::string &Source,
                                     const Graph &G,
                                     const InterpOptions &Options) {
  FrontendBundle B = runFrontend(Source);
  if (!B.ok()) {
    InterpResult R;
    R.Ok = false;
    R.Error = B.Error;
    return R;
  }
  return interpret(*B.Prog, B.Sema, B.Analysis, G, Options);
}

std::string graphit::dsl::readFileOrDie(const std::string &Path) {
  std::FILE *F = std::fopen(Path.c_str(), "rb");
  if (!F) {
    std::fprintf(stderr, "cannot open '%s'\n", Path.c_str());
    fatalError("file open failed");
  }
  std::fseek(F, 0, SEEK_END);
  long Size = std::ftell(F);
  std::fseek(F, 0, SEEK_SET);
  std::string Content(static_cast<size_t>(Size), '\0');
  if (Size > 0 && std::fread(Content.data(), 1,
                             static_cast<size_t>(Size), F) !=
                      static_cast<size_t>(Size)) {
    std::fclose(F);
    fatalError("short read");
  }
  std::fclose(F);
  return Content;
}
