//===- dsl/AST.cpp - GraphIt-subset abstract syntax tree ------------------===//
//
// Part of graphit-ordered, an independent C++ reproduction of "Optimizing
// Ordered Graph Algorithms with GraphIt" (CGO 2020). MIT License.
//
//===----------------------------------------------------------------------===//

#include "dsl/AST.h"

using namespace graphit;
using namespace graphit::dsl;

namespace {

const char *scalarName(TypeKind Kind) {
  switch (Kind) {
  case TypeKind::Int:
    return "int";
  case TypeKind::Float:
    return "float";
  case TypeKind::Bool:
    return "bool";
  case TypeKind::String:
    return "string";
  case TypeKind::Vertex:
    return "Vertex";
  case TypeKind::Edge:
    return "Edge";
  case TypeKind::Void:
    return "void";
  default:
    return "?";
  }
}

} // namespace

std::string TypeRef::toString() const {
  switch (Kind) {
  case TypeKind::Invalid:
    return "<invalid>";
  case TypeKind::VertexSet:
    return "vertexset{" + Element + "}";
  case TypeKind::EdgeSet: {
    std::string S = "edgeset{" + Element + "}(";
    for (size_t I = 0; I < Params.size(); ++I) {
      if (I)
        S += ",";
      S += scalarName(Params[I]);
    }
    return S + ")";
  }
  case TypeKind::Vector:
    return "vector{" + Element + "}(" +
           (Params.empty() ? "?" : scalarName(Params[0])) + ")";
  case TypeKind::PriorityQueue:
    return "priority_queue{" + Element + "}(" +
           (Params.empty() ? "?" : scalarName(Params[0])) + ")";
  default:
    return scalarName(Kind);
  }
}

const char *graphit::dsl::binaryOpSpelling(BinaryExpr::OpKind Op) {
  switch (Op) {
  case BinaryExpr::OpKind::Add:
    return "+";
  case BinaryExpr::OpKind::Sub:
    return "-";
  case BinaryExpr::OpKind::Mul:
    return "*";
  case BinaryExpr::OpKind::Div:
    return "/";
  case BinaryExpr::OpKind::Eq:
    return "==";
  case BinaryExpr::OpKind::Ne:
    return "!=";
  case BinaryExpr::OpKind::Lt:
    return "<";
  case BinaryExpr::OpKind::Le:
    return "<=";
  case BinaryExpr::OpKind::Gt:
    return ">";
  case BinaryExpr::OpKind::Ge:
    return ">=";
  case BinaryExpr::OpKind::And:
    return "&&";
  case BinaryExpr::OpKind::Or:
    return "||";
  }
  return "?";
}

const FuncDecl *Program::findFunc(const std::string &Name) const {
  for (const auto &F : Funcs)
    if (F->Name == Name)
      return F.get();
  return nullptr;
}

const ConstDecl *Program::findConst(const std::string &Name) const {
  for (const auto &C : Consts)
    if (C->Name == Name)
      return C.get();
  return nullptr;
}
