//===- dsl/Parser.cpp - GraphIt-subset recursive-descent parser -----------===//
//
// Part of graphit-ordered, an independent C++ reproduction of "Optimizing
// Ordered Graph Algorithms with GraphIt" (CGO 2020). MIT License.
//
//===----------------------------------------------------------------------===//

#include "dsl/Parser.h"

#include <utility>

using namespace graphit;
using namespace graphit::dsl;

namespace {

/// Thrown-free parser: on the first error it records a message and makes
/// every subsequent step a no-op, unwinding naturally.
class ParserImpl {
public:
  ParserImpl(std::vector<Token> Toks, std::string LexError)
      : Tokens(std::move(Toks)), Error(std::move(LexError)) {}

  ParseResult run() {
    ParseResult Result;
    auto Prog = std::make_unique<Program>();
    while (Error.empty() && !peek().is(TokenKind::Eof)) {
      if (peek().is(TokenKind::KwElement)) {
        parseElement(*Prog);
      } else if (peek().is(TokenKind::KwConst)) {
        parseConst(*Prog);
      } else if (peek().is(TokenKind::KwFunc) ||
                 peek().is(TokenKind::KwExtern)) {
        parseFunc(*Prog);
      } else {
        fail("expected 'element', 'const', or 'func' at top level");
      }
    }
    Result.Error = Error;
    if (Error.empty())
      Result.Prog = std::move(Prog);
    return Result;
  }

private:
  //===--- token plumbing -------------------------------------------------===//

  const Token &peek(int Ahead = 0) const {
    size_t I = Pos + static_cast<size_t>(Ahead);
    return I < Tokens.size() ? Tokens[I] : Tokens.back();
  }

  Token advance() {
    Token T = peek();
    if (Pos + 1 < Tokens.size())
      ++Pos;
    return T;
  }

  bool accept(TokenKind Kind) {
    if (!Error.empty() || !peek().is(Kind))
      return false;
    advance();
    return true;
  }

  Token expect(TokenKind Kind, const char *Context) {
    if (!Error.empty())
      return Token{};
    if (!peek().is(Kind)) {
      fail(std::string("expected ") + tokenKindName(Kind) + " " + Context +
           ", found " + tokenKindName(peek().Kind));
      return Token{};
    }
    return advance();
  }

  void fail(const std::string &Message) {
    if (!Error.empty())
      return;
    Error = "line " + std::to_string(peek().Loc.Line) + ":" +
            std::to_string(peek().Loc.Column) + ": " + Message;
  }

  //===--- declarations ---------------------------------------------------===//

  void parseElement(Program &Prog) {
    SourceLoc At = peek().Loc;
    expect(TokenKind::KwElement, "to begin element declaration");
    Token Name = expect(TokenKind::Identifier, "as element name");
    expect(TokenKind::KwEnd, "to close element declaration");
    if (Error.empty())
      Prog.Elements.push_back(
          std::make_unique<ElementDecl>(Name.Text, At));
  }

  void parseConst(Program &Prog) {
    SourceLoc At = peek().Loc;
    expect(TokenKind::KwConst, "to begin const declaration");
    Token Name = expect(TokenKind::Identifier, "as const name");
    expect(TokenKind::Colon, "after const name");
    TypeRef Type = parseType();
    ExprPtr Init;
    if (accept(TokenKind::Assign))
      Init = parseExpr();
    expect(TokenKind::Semicolon, "to end const declaration");
    if (Error.empty())
      Prog.Consts.push_back(std::make_unique<ConstDecl>(
          Name.Text, std::move(Type), std::move(Init), At));
  }

  void parseFunc(Program &Prog) {
    SourceLoc At = peek().Loc;
    bool IsExtern = accept(TokenKind::KwExtern);
    expect(TokenKind::KwFunc, "to begin function");
    Token Name = expect(TokenKind::Identifier, "as function name");
    expect(TokenKind::LParen, "after function name");
    std::vector<Param> Params;
    if (!peek().is(TokenKind::RParen)) {
      do {
        Token PName = expect(TokenKind::Identifier, "as parameter name");
        expect(TokenKind::Colon, "after parameter name");
        Params.push_back(Param{PName.Text, parseType()});
      } while (accept(TokenKind::Comma));
    }
    expect(TokenKind::RParen, "to close parameter list");

    std::vector<StmtPtr> Body;
    if (!IsExtern)
      Body = parseStmtsUntilEnd();
    else
      expect(TokenKind::KwEnd, "to close extern function");
    if (Error.empty()) {
      auto F = std::make_unique<FuncDecl>(Name.Text, std::move(Params),
                                          std::move(Body), At);
      F->IsExtern = IsExtern;
      Prog.Funcs.push_back(std::move(F));
    }
  }

  //===--- types ----------------------------------------------------------===//

  TypeKind parseScalarKind() {
    if (accept(TokenKind::KwInt))
      return TypeKind::Int;
    if (accept(TokenKind::KwFloat))
      return TypeKind::Float;
    if (accept(TokenKind::KwBool))
      return TypeKind::Bool;
    if (peek().is(TokenKind::Identifier)) {
      // Element names used as endpoint types (e.g. `Vertex`).
      std::string Name = advance().Text;
      if (Name == "Vertex")
        return TypeKind::Vertex;
      if (Name == "Edge")
        return TypeKind::Edge;
      return TypeKind::Vertex; // user element type: vertex-like
    }
    fail("expected a scalar or element type");
    return TypeKind::Invalid;
  }

  TypeRef parseType() {
    TypeRef T;
    if (accept(TokenKind::KwInt)) {
      T.Kind = TypeKind::Int;
      return T;
    }
    if (accept(TokenKind::KwFloat)) {
      T.Kind = TypeKind::Float;
      return T;
    }
    if (accept(TokenKind::KwBool)) {
      T.Kind = TypeKind::Bool;
      return T;
    }
    if (peek().is(TokenKind::Identifier)) {
      std::string Name = advance().Text;
      T.Kind = Name == "Edge" ? TypeKind::Edge : TypeKind::Vertex;
      T.Element = Name;
      return T;
    }
    if (accept(TokenKind::KwVertexSet)) {
      T.Kind = TypeKind::VertexSet;
      expect(TokenKind::LBrace, "after 'vertexset'");
      T.Element = expect(TokenKind::Identifier, "as element name").Text;
      expect(TokenKind::RBrace, "to close element name");
      return T;
    }
    if (accept(TokenKind::KwEdgeSet)) {
      T.Kind = TypeKind::EdgeSet;
      expect(TokenKind::LBrace, "after 'edgeset'");
      T.Element = expect(TokenKind::Identifier, "as element name").Text;
      expect(TokenKind::RBrace, "to close element name");
      expect(TokenKind::LParen, "to open edgeset endpoint types");
      do {
        T.Params.push_back(parseScalarKind());
      } while (accept(TokenKind::Comma));
      expect(TokenKind::RParen, "to close edgeset endpoint types");
      return T;
    }
    if (accept(TokenKind::KwVector)) {
      T.Kind = TypeKind::Vector;
      expect(TokenKind::LBrace, "after 'vector'");
      T.Element = expect(TokenKind::Identifier, "as element name").Text;
      expect(TokenKind::RBrace, "to close element name");
      expect(TokenKind::LParen, "to open vector value type");
      T.Params.push_back(parseScalarKind());
      expect(TokenKind::RParen, "to close vector value type");
      return T;
    }
    if (accept(TokenKind::KwPriorityQueue)) {
      T.Kind = TypeKind::PriorityQueue;
      expect(TokenKind::LBrace, "after 'priority_queue'");
      T.Element = expect(TokenKind::Identifier, "as element name").Text;
      expect(TokenKind::RBrace, "to close element name");
      expect(TokenKind::LParen, "to open priority value type");
      T.Params.push_back(parseScalarKind());
      expect(TokenKind::RParen, "to close priority value type");
      return T;
    }
    fail("expected a type");
    return T;
  }

  //===--- statements -----------------------------------------------------===//

  std::vector<StmtPtr> parseStmtsUntilEnd() {
    std::vector<StmtPtr> Stmts;
    while (Error.empty() && !peek().is(TokenKind::KwEnd) &&
           !peek().is(TokenKind::KwElse) && !peek().is(TokenKind::Eof))
      Stmts.push_back(parseStmt());
    if (!peek().is(TokenKind::KwElse))
      expect(TokenKind::KwEnd, "to close block");
    return Stmts;
  }

  StmtPtr parseStmt() {
    std::string Label;
    if (peek().is(TokenKind::Label))
      Label = advance().Text;
    StmtPtr S = parseStmtNoLabel();
    if (S)
      S->Label = Label;
    return S;
  }

  StmtPtr parseStmtNoLabel() {
    SourceLoc At = peek().Loc;
    if (accept(TokenKind::KwVar)) {
      Token Name = expect(TokenKind::Identifier, "as variable name");
      expect(TokenKind::Colon, "after variable name");
      TypeRef Type = parseType();
      ExprPtr Init;
      if (accept(TokenKind::Assign))
        Init = parseExpr();
      expect(TokenKind::Semicolon, "to end var declaration");
      return std::make_unique<VarDeclStmt>(Name.Text, std::move(Type),
                                           std::move(Init), At);
    }
    if (accept(TokenKind::KwWhile)) {
      ExprPtr Cond = parseExpr();
      std::vector<StmtPtr> Body = parseStmtsUntilEnd();
      return std::make_unique<WhileStmt>(std::move(Cond), std::move(Body),
                                         At);
    }
    if (accept(TokenKind::KwIf)) {
      ExprPtr Cond = parseExpr();
      std::vector<StmtPtr> Then;
      while (Error.empty() && !peek().is(TokenKind::KwEnd) &&
             !peek().is(TokenKind::KwElse) && !peek().is(TokenKind::Eof))
        Then.push_back(parseStmt());
      std::vector<StmtPtr> Else;
      if (accept(TokenKind::KwElse)) {
        while (Error.empty() && !peek().is(TokenKind::KwEnd) &&
               !peek().is(TokenKind::Eof))
          Else.push_back(parseStmt());
      }
      expect(TokenKind::KwEnd, "to close if statement");
      return std::make_unique<IfStmt>(std::move(Cond), std::move(Then),
                                      std::move(Else), At);
    }
    if (accept(TokenKind::KwDelete)) {
      Token Name = expect(TokenKind::Identifier, "after 'delete'");
      expect(TokenKind::Semicolon, "to end delete statement");
      return std::make_unique<DeleteStmt>(Name.Text, At);
    }
    if (accept(TokenKind::KwReturn)) {
      ExprPtr Value;
      if (!peek().is(TokenKind::Semicolon))
        Value = parseExpr();
      expect(TokenKind::Semicolon, "to end return statement");
      return std::make_unique<ReturnStmt>(std::move(Value), At);
    }

    // Expression or assignment.
    ExprPtr E = parseExpr();
    if (accept(TokenKind::Assign)) {
      if (E && !isa<VarRefExpr>(E.get()) && !isa<IndexExpr>(E.get()))
        fail("assignment target must be a variable or indexed vector");
      ExprPtr Value = parseExpr();
      expect(TokenKind::Semicolon, "to end assignment");
      return std::make_unique<AssignStmt>(std::move(E), std::move(Value),
                                          At);
    }
    expect(TokenKind::Semicolon, "to end expression statement");
    return std::make_unique<ExprStmt>(std::move(E), At);
  }

  //===--- expressions ----------------------------------------------------===//

  ExprPtr parseExpr() { return parseOr(); }

  ExprPtr parseOr() {
    ExprPtr L = parseAnd();
    while (peek().is(TokenKind::KwOr)) {
      SourceLoc At = advance().Loc;
      L = std::make_unique<BinaryExpr>(BinaryExpr::OpKind::Or, std::move(L),
                                       parseAnd(), At);
    }
    return L;
  }

  ExprPtr parseAnd() {
    ExprPtr L = parseEquality();
    while (peek().is(TokenKind::KwAnd)) {
      SourceLoc At = advance().Loc;
      L = std::make_unique<BinaryExpr>(BinaryExpr::OpKind::And,
                                       std::move(L), parseEquality(), At);
    }
    return L;
  }

  ExprPtr parseEquality() {
    ExprPtr L = parseRelational();
    while (peek().is(TokenKind::EqEq) || peek().is(TokenKind::NotEq)) {
      BinaryExpr::OpKind Op = peek().is(TokenKind::EqEq)
                                  ? BinaryExpr::OpKind::Eq
                                  : BinaryExpr::OpKind::Ne;
      SourceLoc At = advance().Loc;
      L = std::make_unique<BinaryExpr>(Op, std::move(L), parseRelational(),
                                       At);
    }
    return L;
  }

  ExprPtr parseRelational() {
    ExprPtr L = parseAdditive();
    while (true) {
      BinaryExpr::OpKind Op;
      if (peek().is(TokenKind::Less))
        Op = BinaryExpr::OpKind::Lt;
      else if (peek().is(TokenKind::LessEq))
        Op = BinaryExpr::OpKind::Le;
      else if (peek().is(TokenKind::Greater))
        Op = BinaryExpr::OpKind::Gt;
      else if (peek().is(TokenKind::GreaterEq))
        Op = BinaryExpr::OpKind::Ge;
      else
        return L;
      SourceLoc At = advance().Loc;
      L = std::make_unique<BinaryExpr>(Op, std::move(L), parseAdditive(),
                                       At);
    }
  }

  ExprPtr parseAdditive() {
    ExprPtr L = parseMultiplicative();
    while (peek().is(TokenKind::Plus) || peek().is(TokenKind::Minus)) {
      BinaryExpr::OpKind Op = peek().is(TokenKind::Plus)
                                  ? BinaryExpr::OpKind::Add
                                  : BinaryExpr::OpKind::Sub;
      SourceLoc At = advance().Loc;
      L = std::make_unique<BinaryExpr>(Op, std::move(L),
                                       parseMultiplicative(), At);
    }
    return L;
  }

  ExprPtr parseMultiplicative() {
    ExprPtr L = parseUnary();
    while (peek().is(TokenKind::Star) || peek().is(TokenKind::Slash)) {
      BinaryExpr::OpKind Op = peek().is(TokenKind::Star)
                                  ? BinaryExpr::OpKind::Mul
                                  : BinaryExpr::OpKind::Div;
      SourceLoc At = advance().Loc;
      L = std::make_unique<BinaryExpr>(Op, std::move(L), parseUnary(), At);
    }
    return L;
  }

  ExprPtr parseUnary() {
    if (peek().is(TokenKind::Minus)) {
      SourceLoc At = advance().Loc;
      return std::make_unique<UnaryExpr>(UnaryExpr::OpKind::Neg,
                                         parseUnary(), At);
    }
    if (peek().is(TokenKind::KwNot)) {
      SourceLoc At = advance().Loc;
      return std::make_unique<UnaryExpr>(UnaryExpr::OpKind::Not,
                                         parseUnary(), At);
    }
    return parsePostfix();
  }

  ExprPtr parsePostfix() {
    ExprPtr E = parsePrimary();
    while (Error.empty()) {
      if (peek().is(TokenKind::Dot)) {
        SourceLoc At = advance().Loc;
        Token Method = expect(TokenKind::Identifier, "as method name");
        expect(TokenKind::LParen, "after method name");
        std::vector<ExprPtr> Args = parseArgs();
        E = std::make_unique<MethodCallExpr>(std::move(E), Method.Text,
                                             std::move(Args), At);
        continue;
      }
      if (peek().is(TokenKind::LBracket)) {
        SourceLoc At = advance().Loc;
        ExprPtr Index = parseExpr();
        expect(TokenKind::RBracket, "to close index");
        E = std::make_unique<IndexExpr>(std::move(E), std::move(Index),
                                        At);
        continue;
      }
      return E;
    }
    return E;
  }

  std::vector<ExprPtr> parseArgs() {
    std::vector<ExprPtr> Args;
    if (!peek().is(TokenKind::RParen)) {
      do {
        Args.push_back(parseExpr());
      } while (accept(TokenKind::Comma));
    }
    expect(TokenKind::RParen, "to close argument list");
    return Args;
  }

  ExprPtr parsePrimary() {
    SourceLoc At = peek().Loc;
    if (peek().is(TokenKind::IntLiteral)) {
      Token T = advance();
      return std::make_unique<IntLiteralExpr>(T.IntValue, At);
    }
    if (peek().is(TokenKind::FloatLiteral)) {
      Token T = advance();
      return std::make_unique<FloatLiteralExpr>(T.FloatValue, At);
    }
    if (peek().is(TokenKind::StringLiteral)) {
      Token T = advance();
      return std::make_unique<StringLiteralExpr>(T.Text, At);
    }
    if (accept(TokenKind::KwTrue))
      return std::make_unique<BoolLiteralExpr>(true, At);
    if (accept(TokenKind::KwFalse))
      return std::make_unique<BoolLiteralExpr>(false, At);
    if (accept(TokenKind::LParen)) {
      ExprPtr E = parseExpr();
      expect(TokenKind::RParen, "to close parenthesized expression");
      return E;
    }
    if (accept(TokenKind::KwNew)) {
      // new priority_queue{V}(int)(args...)
      if (!peek().is(TokenKind::KwPriorityQueue)) {
        fail("only 'new priority_queue{...}' is supported");
        return nullptr;
      }
      TypeRef PQType = parseType();
      expect(TokenKind::LParen, "to open priority_queue constructor args");
      std::vector<ExprPtr> Args = parseArgs();
      return std::make_unique<NewPriorityQueueExpr>(std::move(PQType),
                                                    std::move(Args), At);
    }
    if (peek().is(TokenKind::Identifier)) {
      Token Name = advance();
      if (accept(TokenKind::LParen)) {
        std::vector<ExprPtr> Args = parseArgs();
        return std::make_unique<CallExpr>(Name.Text, std::move(Args), At);
      }
      return std::make_unique<VarRefExpr>(Name.Text, At);
    }
    fail(std::string("expected an expression, found ") +
         tokenKindName(peek().Kind));
    return nullptr;
  }

  std::vector<Token> Tokens;
  std::string Error;
  size_t Pos = 0;
};

} // namespace

ParseResult graphit::dsl::parseProgram(const std::string &Source) {
  std::string LexError;
  std::vector<Token> Tokens = lex(Source, LexError);
  if (Tokens.empty())
    Tokens.push_back(Token{});
  return ParserImpl(std::move(Tokens), std::move(LexError)).run();
}
