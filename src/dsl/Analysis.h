//===- dsl/Analysis.h - Priority-update program analyses --------*- C++ -*-===//
//
// Part of graphit-ordered, an independent C++ reproduction of "Optimizing
// Ordered Graph Algorithms with GraphIt" (CGO 2020). MIT License.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The compiler analyses of §5 that make the scheduling options legal and
/// efficient:
///
///  * **priority-update analysis** (§5.1) — locates the priority-update
///    operators inside user-defined functions, determines whether atomics
///    must be inserted (write-write conflicts on the destination under
///    push-style traversal), and detects the *constant sum* pattern
///    (`updatePrioritySum(v, c, threshold)` with a literal constant c)
///    that enables the histogram transformation of Fig. 10;
///
///  * **ordered-loop analysis** (§5.2) — recognizes the
///    `while (pq.finished() == false) { bucket = pq.dequeueReadySet();
///    edges.from(bucket).applyUpdatePriority(f); delete bucket; }`
///    pattern and verifies the dequeued bucket has no other uses, which is
///    the legality condition for replacing the whole loop by the eager
///    ordered-processing operator. It also recognizes the PPSP-style
///    early-exit condition `pq.finishedVertex(v) == false`.
///
//===----------------------------------------------------------------------===//

#ifndef GRAPHIT_DSL_ANALYSIS_H
#define GRAPHIT_DSL_ANALYSIS_H

#include "dsl/AST.h"
#include "dsl/Sema.h"
#include "runtime/Traversal.h"

#include <string>
#include <vector>

namespace graphit {
namespace dsl {

/// One priority-update operator occurrence inside a UDF.
struct PriorityUpdateInfo {
  enum class UpdateOp { Min, Max, Sum };
  UpdateOp Op = UpdateOp::Min;
  const MethodCallExpr *Call = nullptr;
  std::string PQName;       ///< which global priority queue is updated
  std::string TargetParam;  ///< UDF parameter naming the updated vertex
  bool IsConstantSum = false; ///< Sum with a literal-constant delta
  int64_t SumConst = 0;       ///< the constant, when IsConstantSum
  /// True when the Sum threshold is `pq.getCurrentPriority()` (the k-core
  /// clamp pattern of Fig. 10).
  bool ThresholdIsCurrentPriority = false;
};

/// Analysis summary for one user-defined function.
struct UDFInfo {
  const FuncDecl *F = nullptr;
  std::vector<PriorityUpdateInfo> Updates;

  /// §5.1 dependence analysis: under push-style traversal many edges write
  /// the same destination concurrently, so any update targeting a
  /// parameter requires atomics; pull-style gives each destination a
  /// single owner (Fig. 9(b) generates no atomics).
  bool needsAtomics(Direction Dir) const {
    return Dir != Direction::DensePull && !Updates.empty();
  }

  /// Legality of the histogram transformation (Fig. 10): exactly one
  /// update, a sum, by a compile-time constant.
  bool histogramEligible() const {
    return Updates.size() == 1 &&
           Updates[0].Op == PriorityUpdateInfo::UpdateOp::Sum &&
           Updates[0].IsConstantSum;
  }
};

/// One recognized ordered processing loop in `main`.
struct OrderedLoopInfo {
  const WhileStmt *Loop = nullptr;
  std::string PQName;      ///< the priority queue driving the loop
  std::string EdgesetName; ///< edgeset traversed by applyUpdatePriority
  std::string BucketVar;   ///< dequeued vertexset variable
  std::string UDFName;     ///< the function applied to edges
  std::string Label;       ///< #label# on the apply statement ("" if none)
  /// Variable naming the early-exit target vertex when the loop condition
  /// is `pq.finishedVertex(v) == false`; empty for plain `pq.finished()`.
  std::string StopVertexVar;
  /// True when the loop may be replaced by the eager ordered-processing
  /// operator (§5.2): the bucket has no uses besides the edge apply and
  /// its delete.
  bool EagerLegal = false;
};

/// Whole-program analysis results.
struct ProgramAnalysis {
  std::vector<UDFInfo> UDFs;
  std::vector<OrderedLoopInfo> Loops;
  std::vector<std::string> Notes; ///< human-readable analysis log

  const UDFInfo *udfInfo(const std::string &Name) const {
    for (const UDFInfo &U : UDFs)
      if (U.F && U.F->Name == Name)
        return &U;
    return nullptr;
  }
};

/// Runs both analyses. Requires a Sema-annotated program.
ProgramAnalysis analyzeProgram(const Program &Prog, const SemaResult &Sema);

} // namespace dsl
} // namespace graphit

#endif // GRAPHIT_DSL_ANALYSIS_H
