//===- dsl/Interpreter.cpp - Direct execution of GraphIt programs ---------===//
//
// Part of graphit-ordered, an independent C++ reproduction of "Optimizing
// Ordered Graph Algorithms with GraphIt" (CGO 2020). MIT License.
//
//===----------------------------------------------------------------------===//

#include "dsl/Interpreter.h"

#include "core/PriorityQueue.h"
#include "support/Atomics.h"

#include <algorithm>
#include <functional>
#include <memory>

using namespace graphit;
using namespace graphit::dsl;

namespace {

/// Runtime scalar value.
struct Value {
  enum class Kind { Int, Float, Bool, Str, Void } K = Kind::Void;
  int64_t I = 0;
  double F = 0.0;
  bool B = false;
  std::string S;

  static Value ofInt(int64_t V) {
    Value X;
    X.K = Kind::Int;
    X.I = V;
    return X;
  }
  static Value ofFloat(double V) {
    Value X;
    X.K = Kind::Float;
    X.F = V;
    return X;
  }
  static Value ofBool(bool V) {
    Value X;
    X.K = Kind::Bool;
    X.B = V;
    return X;
  }
  static Value ofStr(std::string V) {
    Value X;
    X.K = Kind::Str;
    X.S = std::move(V);
    return X;
  }

  int64_t asInt() const { return K == Kind::Float ? (int64_t)F : I; }
  double asFloat() const { return K == Kind::Float ? F : (double)I; }
  bool asBool() const { return K == Kind::Bool ? B : asInt() != 0; }
};

/// Simple lexical environment (one map per scope chain level).
class Env {
public:
  explicit Env(const Env *P = nullptr) : Parent(P) {}

  Value *find(const std::string &Name) {
    auto It = Vars.find(Name);
    if (It != Vars.end())
      return &It->second;
    // Walking up requires const-cast-free duplication; parents are only
    // read (assignment to outer locals is unsupported in the subset).
    return nullptr;
  }
  const Value *findRead(const std::string &Name) const {
    auto It = Vars.find(Name);
    if (It != Vars.end())
      return &It->second;
    return Parent ? Parent->findRead(Name) : nullptr;
  }
  void define(const std::string &Name, Value V) {
    Vars[Name] = std::move(V);
  }

private:
  const Env *Parent;
  std::map<std::string, Value> Vars;
};

/// Signals an interpreter error (caught at the top level).
struct InterpError {
  std::string Message;
};

[[noreturn]] void interpFail(const std::string &Message) {
  throw InterpError{Message};
}

/// Callbacks a UDF evaluation uses to reach the priority queue. The eager
/// engine and the facade install different sinks.
struct PQSink {
  std::function<void(VertexId, Priority)> Min;
  std::function<void(VertexId, Priority)> Max;
  std::function<void(VertexId, Priority, Priority)> Sum;
  std::function<Priority()> CurrentPriority;
};

class InterpreterImpl {
public:
  InterpreterImpl(const Program &P, const SemaResult &SR,
                  const ProgramAnalysis &PA, const Graph &Gr,
                  const InterpOptions &O)
      : Prog(P), Sema(SR), Analysis(PA), G(Gr), Options(O) {}

  InterpResult run() {
    InterpResult R;
    try {
      initGlobals();
      const FuncDecl *Main = Prog.findFunc("main");
      if (!Main)
        interpFail("program has no main()");
      Env MainEnv;
      execStmts(Main->Body, MainEnv);
      R.Ok = true;
      R.Vectors = Vectors;
      R.Stats = LastStats;
      R.UsedEagerEngine = UsedEager;
    } catch (const InterpError &E) {
      R.Ok = false;
      R.Error = E.Message;
    }
    return R;
  }

private:
  //===--- globals ---------------------------------------------------------===//

  void initGlobals() {
    for (const auto &C : Prog.Consts) {
      switch (C->DeclType.Kind) {
      case TypeKind::EdgeSet:
        EdgesetName = C->Name; // bound to the externally supplied graph
        break;
      case TypeKind::Vector: {
        std::vector<Priority> &V = Vectors[C->Name];
        if (!C->Init) {
          V.assign(static_cast<size_t>(G.numNodes()), 0);
          break;
        }
        if (const auto *M = dyn_cast<MethodCallExpr>(C->Init.get())) {
          if (M->Method == "getOutDegrees") {
            V.resize(static_cast<size_t>(G.numNodes()));
            for (Count X = 0; X < G.numNodes(); ++X)
              V[X] = G.outDegree(static_cast<VertexId>(X));
            break;
          }
          interpFail("unsupported vector initializer method");
        }
        if (const auto *Call = dyn_cast<CallExpr>(C->Init.get())) {
          if (Call->Callee == "load_vertex_data") {
            Env Empty;
            std::string Key = eval(*Call->Args[0], Empty, nullptr).S;
            auto It = Options.VertexData.find(Key);
            if (It == Options.VertexData.end())
              interpFail("no vertex data registered for '" + Key + "'");
            V = It->second;
            if (static_cast<Count>(V.size()) != G.numNodes())
              interpFail("vertex data size mismatch");
            break;
          }
          interpFail("unsupported vector initializer call");
        }
        Env Empty;
        Value Fill = eval(*C->Init, Empty, nullptr);
        V.assign(static_cast<size_t>(G.numNodes()), Fill.asInt());
        break;
      }
      case TypeKind::PriorityQueue:
        break; // bound at its `new` assignment
      default: {
        Env Empty;
        Globals.define(C->Name,
                       C->Init ? eval(*C->Init, Empty, nullptr) : Value());
        break;
      }
      }
    }
  }

  //===--- statements -------------------------------------------------------===//

  void execStmts(const std::vector<StmtPtr> &Stmts, Env &E) {
    for (const StmtPtr &S : Stmts)
      execStmt(*S, E);
  }

  void execStmt(const Stmt &S, Env &E) {
    if (const auto *VD = dyn_cast<VarDeclStmt>(&S)) {
      if (VD->DeclType.Kind == TypeKind::VertexSet)
        interpFail("vertexset variables occur only in ordered loops");
      E.define(VD->Name, VD->Init ? eval(*VD->Init, E, nullptr) : Value());
      return;
    }
    if (const auto *AS = dyn_cast<AssignStmt>(&S)) {
      execAssign(*AS, E);
      return;
    }
    if (const auto *ES = dyn_cast<ExprStmt>(&S)) {
      eval(*ES->E, E, nullptr);
      return;
    }
    if (const auto *WS = dyn_cast<WhileStmt>(&S)) {
      execWhile(*WS, E);
      return;
    }
    if (const auto *IS = dyn_cast<IfStmt>(&S)) {
      if (eval(*IS->Cond, E, nullptr).asBool())
        execStmts(IS->Then, E);
      else
        execStmts(IS->Else, E);
      return;
    }
    if (isa<DeleteStmt>(&S))
      return; // storage is managed by the interpreter
    if (isa<ReturnStmt>(&S))
      interpFail("return outside of a user-defined function");
  }

  void execAssign(const AssignStmt &AS, Env &E) {
    // pq = new priority_queue{...}(...)
    if (const auto *New = dyn_cast<NewPriorityQueueExpr>(AS.Value.get())) {
      bindPQ(cast<VarRefExpr>(AS.Target.get())->Name, *New, E);
      return;
    }
    Value V = eval(*AS.Value, E, nullptr);
    if (const auto *Target = dyn_cast<VarRefExpr>(AS.Target.get())) {
      if (Value *Slot = E.find(Target->Name)) {
        *Slot = V;
        return;
      }
      if (Value *Slot = Globals.find(Target->Name)) {
        *Slot = V;
        return;
      }
      interpFail("assignment to unknown variable '" + Target->Name + "'");
    }
    if (const auto *Ix = dyn_cast<IndexExpr>(AS.Target.get())) {
      std::vector<Priority> &Vec = vectorFor(*Ix->Base);
      int64_t I = eval(*Ix->Index, E, nullptr).asInt();
      if (I < 0 || static_cast<size_t>(I) >= Vec.size())
        interpFail("vector index out of range");
      Vec[static_cast<size_t>(I)] = V.asInt();
      return;
    }
    interpFail("unsupported assignment target");
  }

  //===--- priority queue binding ------------------------------------------===//

  struct PQState {
    bool AllowCoarsening = false;
    PriorityOrder Order = PriorityOrder::LowerFirst;
    std::string VectorName;
    VertexId Start = kInvalidVertex;
    std::unique_ptr<PriorityQueue> Facade;
    Schedule Sched;
  };

  void bindPQ(const std::string &Name, const NewPriorityQueueExpr &New,
              Env &E) {
    PQState State;
    if (!New.Args.empty())
      State.AllowCoarsening = eval(*New.Args[0], E, nullptr).asBool();
    if (New.Args.size() > 1) {
      std::string Order = eval(*New.Args[1], E, nullptr).S;
      State.Order = Order == "higher_first" ? PriorityOrder::HigherFirst
                                            : PriorityOrder::LowerFirst;
    }
    if (New.Args.size() > 2) {
      const auto *V = dyn_cast<VarRefExpr>(New.Args[2].get());
      if (!V || !Vectors.count(V->Name))
        interpFail("priority_queue needs a priority vector global");
      State.VectorName = V->Name;
    }
    if (New.Args.size() > 3)
      State.Start = static_cast<VertexId>(
          eval(*New.Args[3], E, nullptr).asInt());
    PQ[Name] = std::move(State);
  }

  //===--- while loops ------------------------------------------------------===//

  void execWhile(const WhileStmt &WS, Env &E) {
    const OrderedLoopInfo *Loop = nullptr;
    for (const OrderedLoopInfo &L : Analysis.Loops)
      if (L.Loop == &WS)
        Loop = &L;

    if (Loop) {
      Schedule S = scheduleForLabel(Options.Schedules, Loop->Label);
      const UDFInfo *Info = Analysis.udfInfo(Loop->UDFName);
      bool MinShape =
          Info && Info->Updates.size() == 1 &&
          Info->Updates[0].Op == PriorityUpdateInfo::UpdateOp::Min;
      if (S.isEager() && Loop->EagerLegal && MinShape &&
          PQ[Loop->PQName].Order == PriorityOrder::LowerFirst) {
        execOrderedLoopEager(*Loop, S, E);
        return;
      }
      execOrderedLoopFacade(*Loop, S, E);
      return;
    }

    // Generic while (no priority structure involved).
    int64_t Guard = 0;
    while (eval(*WS.Cond, E, nullptr).asBool()) {
      execStmts(WS.Body, E);
      if (++Guard > (G.numNodes() + 2) * 4)
        interpFail("runaway while loop");
    }
  }

  /// Eager path: the §5.2 transformation — replace the whole loop with the
  /// ordered processing operator, evaluating the UDF per edge.
  void execOrderedLoopEager(const OrderedLoopInfo &Loop, const Schedule &S,
                            Env &E) {
    UsedEager = true;
    PQState &Q = PQ[Loop.PQName];
    std::vector<Priority> &Prio = Vectors[Q.VectorName];
    const FuncDecl *F = Prog.findFunc(Loop.UDFName);
    if (!F || Q.Start == kInvalidVertex)
      interpFail("eager loop needs a start vertex and a UDF");
    int64_t Delta = Q.AllowCoarsening ? S.Delta : 1;

    VertexId StopVertex = kInvalidVertex;
    if (!Loop.StopVertexVar.empty())
      StopVertex = static_cast<VertexId>(readScalar(Loop.StopVertexVar, E));
    auto Stop = [&](int64_t Key) {
      if (StopVertex == kInvalidVertex)
        return false;
      Priority Best = atomicLoad(&Prio[StopVertex]);
      return Best != kInfiniteDistance && Key * Delta >= Best;
    };

    OrderedStats Stats;
    auto Relax = [&](VertexId U, int64_t CurrKey, auto &&Push) {
      // Relaxed atomic pre-checks: concurrent relaxations CAS these slots.
      if (atomicLoadRelaxed(&Prio[U]) / Delta < CurrKey)
        return;
      PQSink Sink;
      Sink.Min = [&](VertexId V, Priority NewVal) {
        if (NewVal < atomicLoadRelaxed(&Prio[V]) &&
            atomicWriteMin(&Prio[V], NewVal))
          Push(V, std::max(NewVal / Delta, CurrKey));
      };
      Sink.CurrentPriority = [&]() { return CurrKey * Delta; };
      for (WNode Edge : G.outNeighbors(U))
        evalUDF(*F, U, Edge.V, Edge.W, Sink);
    };
    eagerOrderedProcess(G.numNodes(), G.numEdges() + 1, Q.Start,
                        Prio[Q.Start] / Delta, S, Relax, Stop, &Stats);
    LastStats = Stats;
  }

  /// Facade path: execute the loop as written, with Table 1 semantics.
  void execOrderedLoopFacade(const OrderedLoopInfo &Loop, const Schedule &S,
                             Env &E) {
    PQState &Q = PQ[Loop.PQName];
    std::vector<Priority> &Prio = Vectors[Q.VectorName];
    const FuncDecl *F = Prog.findFunc(Loop.UDFName);
    if (!F)
      interpFail("ordered loop UDF not found");
    Q.Sched = S;
    Q.Facade = std::make_unique<PriorityQueue>(
        Q.AllowCoarsening, Q.Order, Prio, S, Q.Start);
    PriorityQueue &Facade = *Q.Facade;

    VertexId StopVertex = kInvalidVertex;
    if (!Loop.StopVertexVar.empty())
      StopVertex = static_cast<VertexId>(readScalar(Loop.StopVertexVar, E));

    OrderedStats Stats;
    Timer Clock;
    while (!Facade.finished()) {
      if (StopVertex != kInvalidVertex && Facade.finishedVertex(StopVertex))
        break;
      VertexSubset Bucket = Facade.dequeueReadySet();
      ++Stats.Rounds;
      Stats.VerticesProcessed += Bucket.size();

      PQSink Sink;
      Sink.Min = [&](VertexId V, Priority NewVal) {
        Facade.updatePriorityMin(V, NewVal);
      };
      Sink.Max = [&](VertexId V, Priority NewVal) {
        Facade.updatePriorityMax(V, NewVal);
      };
      Sink.Sum = [&](VertexId V, Priority Diff, Priority Threshold) {
        Facade.updatePrioritySum(V, Diff, Threshold);
      };
      Sink.CurrentPriority = [&]() { return Facade.getCurrentPriority(); };
      applyUpdatePriority(G, Bucket,
                          [&](VertexId Src, VertexId Dst, Weight W) {
                            evalUDF(*F, Src, Dst, W, Sink);
                          },
                          S.Par);
    }
    Stats.Seconds = Clock.seconds();
    LastStats = Stats;
  }

  //===--- UDF evaluation ----------------------------------------------------===//

  void evalUDF(const FuncDecl &F, VertexId Src, VertexId Dst, Weight W,
               const PQSink &Sink) {
    Env E;
    if (!F.Params.empty())
      E.define(F.Params[0].Name, Value::ofInt(Src));
    if (F.Params.size() > 1)
      E.define(F.Params[1].Name, Value::ofInt(Dst));
    if (F.Params.size() > 2)
      E.define(F.Params[2].Name, Value::ofInt(W));
    for (const StmtPtr &S : F.Body)
      execUDFStmt(*S, E, Sink);
  }

  void execUDFStmt(const Stmt &S, Env &E, const PQSink &Sink) {
    if (const auto *VD = dyn_cast<VarDeclStmt>(&S)) {
      E.define(VD->Name, VD->Init ? eval(*VD->Init, E, &Sink) : Value());
      return;
    }
    if (const auto *IS = dyn_cast<IfStmt>(&S)) {
      if (eval(*IS->Cond, E, &Sink).asBool())
        for (const StmtPtr &B : IS->Then)
          execUDFStmt(*B, E, Sink);
      else
        for (const StmtPtr &B : IS->Else)
          execUDFStmt(*B, E, Sink);
      return;
    }
    if (const auto *ES = dyn_cast<ExprStmt>(&S)) {
      eval(*ES->E, E, &Sink);
      return;
    }
    if (const auto *AS = dyn_cast<AssignStmt>(&S)) {
      // Plain vector writes inside UDFs are rare (the priority operators
      // subsume them) but supported, non-atomically.
      Value V = eval(*AS->Value, E, &Sink);
      if (const auto *Ix = dyn_cast<IndexExpr>(AS->Target.get())) {
        std::vector<Priority> &Vec = vectorFor(*Ix->Base);
        int64_t I = eval(*Ix->Index, E, &Sink).asInt();
        Vec[static_cast<size_t>(I)] = V.asInt();
        return;
      }
      if (const auto *Var = dyn_cast<VarRefExpr>(AS->Target.get())) {
        if (Value *Slot = E.find(Var->Name)) {
          *Slot = V;
          return;
        }
      }
      interpFail("unsupported assignment in UDF");
    }
    if (isa<ReturnStmt>(&S))
      return; // void UDFs only
  }

  //===--- expressions --------------------------------------------------------===//

  std::vector<Priority> &vectorFor(const Expr &Base) {
    const auto *V = dyn_cast<VarRefExpr>(&Base);
    if (!V || !Vectors.count(V->Name))
      interpFail("expected a vector global");
    return Vectors[V->Name];
  }

  int64_t readScalar(const std::string &Name, Env &E) {
    if (const Value *V = E.findRead(Name))
      return V->asInt();
    if (const Value *V = Globals.findRead(Name))
      return V->asInt();
    interpFail("unknown scalar '" + Name + "'");
  }

  Value eval(const Expr &Ex, Env &E, const PQSink *Sink) {
    if (const auto *I = dyn_cast<IntLiteralExpr>(&Ex))
      return Value::ofInt(I->Value);
    if (const auto *F = dyn_cast<FloatLiteralExpr>(&Ex))
      return Value::ofFloat(F->Value);
    if (const auto *B = dyn_cast<BoolLiteralExpr>(&Ex))
      return Value::ofBool(B->Value);
    if (const auto *S = dyn_cast<StringLiteralExpr>(&Ex))
      return Value::ofStr(S->Value);
    if (const auto *V = dyn_cast<VarRefExpr>(&Ex)) {
      if (V->Name == "INT_MAX")
        return Value::ofInt(kInfiniteDistance);
      if (const Value *Local = E.findRead(V->Name))
        return *Local;
      if (const Value *Global = Globals.findRead(V->Name))
        return *Global;
      interpFail("unbound variable '" + V->Name + "'");
    }
    if (const auto *B = dyn_cast<BinaryExpr>(&Ex))
      return evalBinary(*B, E, Sink);
    if (const auto *U = dyn_cast<UnaryExpr>(&Ex)) {
      Value V = eval(*U->Operand, E, Sink);
      if (U->Op == UnaryExpr::OpKind::Not)
        return Value::ofBool(!V.asBool());
      if (V.K == Value::Kind::Float)
        return Value::ofFloat(-V.asFloat());
      return Value::ofInt(-V.asInt());
    }
    if (const auto *C = dyn_cast<CallExpr>(&Ex))
      return evalCall(*C, E, Sink);
    if (const auto *M = dyn_cast<MethodCallExpr>(&Ex))
      return evalMethod(*M, E, Sink);
    if (const auto *Ix = dyn_cast<IndexExpr>(&Ex)) {
      if (const auto *BV = dyn_cast<VarRefExpr>(Ix->Base.get())) {
        if (BV->Name == "argv") {
          int64_t I = eval(*Ix->Index, E, Sink).asInt();
          // argv[1] is the graph (virtual); argv[k>=2] maps to Args[k-2].
          if (I == 1)
            return Value::ofStr("<graph>");
          size_t Slot = static_cast<size_t>(I - 2);
          if (Slot >= Options.Args.size())
            interpFail("argv index out of range");
          return Value::ofStr(Options.Args[Slot]);
        }
      }
      std::vector<Priority> &Vec = vectorFor(*Ix->Base);
      int64_t I = eval(*Ix->Index, E, Sink).asInt();
      if (I < 0 || static_cast<size_t>(I) >= Vec.size())
        interpFail("vector index out of range");
      // Relaxed atomic read: UDFs run inside parallel relaxations, so
      // another thread may be CAS-ing this slot (pq.min re-validates).
      return Value::ofInt(atomicLoadRelaxed(&Vec[static_cast<size_t>(I)]));
    }
    interpFail("unsupported expression");
  }

  Value evalBinary(const BinaryExpr &B, Env &E, const PQSink *Sink) {
    using Op = BinaryExpr::OpKind;
    if (B.Op == Op::And)
      return Value::ofBool(eval(*B.LHS, E, Sink).asBool() &&
                           eval(*B.RHS, E, Sink).asBool());
    if (B.Op == Op::Or)
      return Value::ofBool(eval(*B.LHS, E, Sink).asBool() ||
                           eval(*B.RHS, E, Sink).asBool());
    Value L = eval(*B.LHS, E, Sink);
    Value R = eval(*B.RHS, E, Sink);
    bool FloatMode =
        L.K == Value::Kind::Float || R.K == Value::Kind::Float;
    switch (B.Op) {
    case Op::Add:
      return FloatMode ? Value::ofFloat(L.asFloat() + R.asFloat())
                       : Value::ofInt(L.asInt() + R.asInt());
    case Op::Sub:
      return FloatMode ? Value::ofFloat(L.asFloat() - R.asFloat())
                       : Value::ofInt(L.asInt() - R.asInt());
    case Op::Mul:
      return FloatMode ? Value::ofFloat(L.asFloat() * R.asFloat())
                       : Value::ofInt(L.asInt() * R.asInt());
    case Op::Div:
      if (!FloatMode && R.asInt() == 0)
        interpFail("integer division by zero");
      return FloatMode ? Value::ofFloat(L.asFloat() / R.asFloat())
                       : Value::ofInt(L.asInt() / R.asInt());
    case Op::Eq:
      return Value::ofBool(L.K == Value::Kind::Bool
                               ? L.asBool() == R.asBool()
                               : L.asFloat() == R.asFloat());
    case Op::Ne:
      return Value::ofBool(L.K == Value::Kind::Bool
                               ? L.asBool() != R.asBool()
                               : L.asFloat() != R.asFloat());
    case Op::Lt:
      return Value::ofBool(L.asFloat() < R.asFloat());
    case Op::Le:
      return Value::ofBool(L.asFloat() <= R.asFloat());
    case Op::Gt:
      return Value::ofBool(L.asFloat() > R.asFloat());
    case Op::Ge:
      return Value::ofBool(L.asFloat() >= R.asFloat());
    default:
      interpFail("unsupported binary operator");
    }
  }

  Value evalCall(const CallExpr &C, Env &E, const PQSink *Sink) {
    if (C.Callee == "atoi")
      return Value::ofInt(
          std::atoll(eval(*C.Args[0], E, Sink).S.c_str()));
    if (C.Callee == "load")
      return Value::ofStr("<graph>");
    interpFail("unsupported call '" + C.Callee + "' (extern functions "
               "must be intercepted by the driver)");
  }

  Value evalMethod(const MethodCallExpr &M, Env &E, const PQSink *Sink) {
    std::string BaseName;
    if (const auto *BV = dyn_cast<VarRefExpr>(M.Base.get()))
      BaseName = BV->Name;

    if (PQ.count(BaseName))
      return evalPQMethod(M, BaseName, E, Sink);
    interpFail("unsupported method '" + M.Method + "'");
  }

  Value evalPQMethod(const MethodCallExpr &M, const std::string &Name,
                     Env &E, const PQSink *Sink) {
    PQState &Q = PQ[Name];
    auto ArgInt = [&](size_t I) {
      return eval(*M.Args[I], E, Sink).asInt();
    };

    if (M.Method == "getCurrentPriority" ||
        M.Method == "get_current_priority") {
      if (Sink && Sink->CurrentPriority)
        return Value::ofInt(Sink->CurrentPriority());
      if (Q.Facade)
        return Value::ofInt(Q.Facade->getCurrentPriority());
      interpFail("getCurrentPriority outside an ordered loop");
    }
    if (M.Method == "finished") {
      if (!Q.Facade) {
        // Queried before any loop ran: construct the facade on demand.
        Q.Facade = std::make_unique<PriorityQueue>(
            Q.AllowCoarsening, Q.Order, Vectors[Q.VectorName], Q.Sched,
            Q.Start);
      }
      return Value::ofBool(Q.Facade->finished());
    }
    if (M.Method == "finishedVertex")
      return Value::ofBool(
          Q.Facade &&
          Q.Facade->finishedVertex(static_cast<VertexId>(ArgInt(0))));
    if (M.Method == "updatePriorityMin" ||
        M.Method == "updatePriorityMax") {
      if (!Sink)
        interpFail("priority updates occur only inside UDFs");
      auto V = static_cast<VertexId>(ArgInt(0));
      Priority NewVal = M.Args.size() >= 3 ? ArgInt(2) : ArgInt(1);
      if (M.Method == "updatePriorityMin") {
        if (!Sink->Min)
          interpFail("this engine cannot execute updatePriorityMin");
        Sink->Min(V, NewVal);
      } else {
        if (!Sink->Max)
          interpFail("this engine cannot execute updatePriorityMax");
        Sink->Max(V, NewVal);
      }
      return Value();
    }
    if (M.Method == "updatePrioritySum") {
      if (!Sink || !Sink->Sum)
        interpFail("this engine cannot execute updatePrioritySum");
      auto V = static_cast<VertexId>(ArgInt(0));
      Priority Diff = ArgInt(1);
      Priority Threshold = M.Args.size() >= 3 ? ArgInt(2) : 0;
      Sink->Sum(V, Diff, Threshold);
      return Value();
    }
    interpFail("unsupported priority_queue method '" + M.Method + "'");
  }

  const Program &Prog;
  const SemaResult &Sema;
  const ProgramAnalysis &Analysis;
  const Graph &G;
  const InterpOptions &Options;

  std::string EdgesetName;
  std::map<std::string, std::vector<Priority>> Vectors;
  std::map<std::string, PQState> PQ;
  Env Globals;
  OrderedStats LastStats;
  bool UsedEager = false;
};

} // namespace

InterpResult graphit::dsl::interpret(const Program &Prog,
                                     const SemaResult &Sema,
                                     const ProgramAnalysis &Analysis,
                                     const Graph &G,
                                     const InterpOptions &Options) {
  return InterpreterImpl(Prog, Sema, Analysis, G, Options).run();
}
