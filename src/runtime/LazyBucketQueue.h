//===- runtime/LazyBucketQueue.h - Julienne-style lazy buckets --*- C++ -*-===//
//
// Part of graphit-ordered, an independent C++ reproduction of "Optimizing
// Ordered Graph Algorithms with GraphIt" (CGO 2020). MIT License.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The lazy bucketing structure of §3.1/§5.1, modeled on Julienne: only a
/// window of `NumOpenBuckets` buckets is materialized; vertices whose key
/// falls beyond the window live in a single overflow bucket that is
/// re-bucketed when the window is exhausted. Bucket arrays may contain
/// stale entries; extraction filters them against the authoritative
/// per-vertex key with an exactly-once CAS.
///
/// Two key-computation interfaces are provided, reproducing the paper's
/// improvement over Julienne (§5.1, "we improve its performance by
/// redesigning the lazy priority queue interface"):
///
///  * the *priority-vector* interface — keys are computed inline as
///    `priorityVector[v] / delta` with no user function call (the paper's
///    optimized design, used by GraphIt schedules);
///  * the *lambda* interface — a `std::function` per key computation
///    (Julienne's original design, kept for the baseline proxy so Table 4's
///    k-core/SetCover gap is attributable).
///
//===----------------------------------------------------------------------===//

#ifndef GRAPHIT_RUNTIME_LAZYBUCKETQUEUE_H
#define GRAPHIT_RUNTIME_LAZYBUCKETQUEUE_H

#include "support/Atomics.h"
#include "support/TSanAnnotate.h"
#include "support/Types.h"

#include <functional>
#include <limits>
#include <vector>

namespace graphit {

/// Which end of the key space is processed first. Delta-stepping and k-core
/// process lower keys first; SetCover processes higher (best
/// cost-per-element) first.
enum class PriorityOrder { LowerFirst, HigherFirst };

/// Lazy (Julienne-style) bucket queue over vertices [0, NumNodes).
class LazyBucketQueue {
public:
  /// Key meaning "not in the queue".
  static constexpr int64_t kNoBucket = std::numeric_limits<int64_t>::min();

  /// Creates an empty queue. \p NumOpenBuckets is the materialized window
  /// size (`configNumBuckets` in the scheduling language).
  LazyBucketQueue(Count NumNodes, int NumOpenBuckets, PriorityOrder Order);

  /// Inserts \p V with \p Key. Not thread-safe; use `updateBuckets` for
  /// parallel bulk insertion.
  void insert(VertexId V, int64_t Key);

  /// Bulk parallel insert/move: sets the key of `Vs[i]` to `Keys[i]` and
  /// moves it to the corresponding bucket. A vertex SHOULD appear at most
  /// once per call (traversal-level dedup guarantees this for generated
  /// code); if duplicates slip through, the last write to the key wins
  /// nondeterministically, but `pendingEstimate` stays exact — fresh
  /// insertions are counted by atomically exchanging the old key, so a
  /// vertex can never be counted twice. Keys must not precede the current
  /// bucket.
  void updateBuckets(const VertexId *Vs, const int64_t *Keys, Count M) {
    updateBucketsWith(Vs, M, [Keys](Count I, VertexId) { return Keys[I]; });
  }

  /// Convenience overload.
  void updateBuckets(const std::vector<VertexId> &Vs,
                     const std::vector<int64_t> &Keys) {
    updateBuckets(Vs.data(), Keys.data(), static_cast<Count>(Vs.size()));
  }

  /// The fused form of `updateBuckets` (§5.1, the redesigned lazy
  /// interface): keys are computed inline by `Key(I, Vs[I])` during the
  /// authoritative-key pass, so callers scatter straight from a changed-
  /// vertex list into buckets without materializing a parallel key array.
  template <typename KeyFn>
  void updateBucketsWith(const VertexId *Vs, Count M, KeyFn &&Key) {
    if (M == 0)
      return;
    if (M < kBulkParallelCutoff) {
      for (Count I = 0; I < M; ++I)
        insert(Vs[I], Key(I, Vs[I]));
      return;
    }
    int64_t Fresh = 0;
    GRAPHIT_OMP_REGION_ENTER(&Fresh);
#pragma omp parallel
    {
      GRAPHIT_OMP_REGION_BEGIN(&Fresh);
      int64_t Mine = 0;
#pragma omp for schedule(static) nowait
      for (Count I = 0; I < M; ++I) {
        int64_t Old = atomicExchange(&KeyOf_[Vs[I]],
                                     toInternal(Key(I, Vs[I])));
        if (Old == kNoBucket)
          ++Mine;
      }
      fetchAdd(&Fresh, Mine);
      GRAPHIT_OMP_REGION_END(&Fresh);
    }
    GRAPHIT_OMP_REGION_EXIT(&Fresh);
    Pending += Fresh;
    scatterByStoredKey(Vs, M);
  }

  /// Advances to the next non-empty bucket, extracting its members (they
  /// leave the queue). \returns false when the queue is exhausted.
  bool nextBucket();

  /// Key of the bucket most recently returned by `nextBucket`.
  int64_t currentKey() const { return CurrentKeyUser; }

  /// Members of the bucket most recently returned by `nextBucket`.
  const std::vector<VertexId> &currentBucket() const {
    return CurrentBucket;
  }

  /// Key of \p V as known to the queue, or kNoBucket.
  int64_t keyOf(VertexId V) const;

  /// Size of the vertex universe.
  Count numNodes() const { return NumNodes; }

  /// Total vertices currently queued (exact; maintained under bulk ops).
  Count pendingEstimate() const { return Pending; }

  /// Number of overflow re-bucketing passes performed (stats).
  int64_t overflowRebuckets() const { return OverflowRebuckets; }

private:
  // Internally keys are mapped so that processing order is always
  // ascending: internal = key for LowerFirst, -key for HigherFirst.
  int64_t toInternal(int64_t Key) const {
    return Order == PriorityOrder::LowerFirst ? Key : -Key;
  }
  int64_t fromInternal(int64_t Key) const {
    return Order == PriorityOrder::LowerFirst ? Key : -Key;
  }

  /// Internal sentinel used while reducing over overflow keys.
  static constexpr int64_t kNoValidKey = std::numeric_limits<int64_t>::max();

  /// Bulk operations below this size run serially; lazy bucketing's
  /// per-round overhead on tiny rounds is part of what Table 7 measures,
  /// and a parallel scatter on a 4-element round would overstate it.
  static constexpr Count kBulkParallelCutoff = 4096;

  /// Places \p V (with internal key \p Key) into an open slot or overflow.
  /// Caller must have set KeyOf_[V].
  void place(VertexId V, int64_t Key);

  /// Parallel two-pass scatter of \p Vs into the open window / overflow by
  /// each vertex's authoritative `KeyOf_` entry (set by the caller). Stale
  /// entries (kNoBucket) are dropped.
  void scatterByStoredKey(const VertexId *Vs, Count M);

  /// Moves the still-valid members of \p Arr (a bucket array for internal
  /// key \p SlotKey) into CurrentBucket, claiming each exactly once. May
  /// overwrite \p Arr's contents (the caller clears it afterwards).
  void extractValid(std::vector<VertexId> &Arr, int64_t SlotKey);

  /// Moves valid overflow entries into the new window starting at the
  /// minimum pending key. \returns false if the overflow held no valid
  /// entries (queue exhausted).
  bool rebucketOverflow();

  Count NumNodes;
  int NumOpen;
  PriorityOrder Order;

  std::vector<int64_t> KeyOf_;               ///< authoritative internal keys
  std::vector<std::vector<VertexId>> Open;   ///< window of bucket arrays
  std::vector<VertexId> Overflow;            ///< beyond-window entries
  int64_t WindowStart = 0;                   ///< internal key of Open[0]
  int CurSlot = 0;                           ///< scan position in window
  bool WindowInitialized = false;

  std::vector<VertexId> CurrentBucket;
  std::vector<VertexId> Scratch; ///< recycled bulk-op staging storage
  int64_t CurrentKeyUser = 0;
  Count Pending = 0;
  int64_t OverflowRebuckets = 0;
};

/// Julienne's original lambda-keyed interface: a thin adapter over
/// LazyBucketQueue that recomputes keys through a user function (one
/// indirect call per touched vertex), reproducing the overhead the paper's
/// redesigned interface eliminates. Used by the Julienne baseline proxy.
class LambdaBucketQueue {
public:
  using KeyFn = std::function<int64_t(VertexId)>;

  LambdaBucketQueue(Count NumNodes, int NumOpenBuckets, PriorityOrder Order,
                    KeyFn KeyOf)
      : Queue(NumNodes, NumOpenBuckets, Order), Key(std::move(KeyOf)) {}

  /// Inserts every vertex for which the key function returns a key
  /// (kNoBucket means "absent").
  void insertAll();

  /// Re-evaluates the key function for each vertex and moves it.
  void updateBuckets(const VertexId *Vs, Count M);

  bool nextBucket() { return Queue.nextBucket(); }
  int64_t currentKey() const { return Queue.currentKey(); }
  const std::vector<VertexId> &currentBucket() const {
    return Queue.currentBucket();
  }

private:
  LazyBucketQueue Queue;
  KeyFn Key;
  std::vector<int64_t> ScratchKeys;
};

} // namespace graphit

#endif // GRAPHIT_RUNTIME_LAZYBUCKETQUEUE_H
