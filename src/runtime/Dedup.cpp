//===- runtime/Dedup.cpp - Per-vertex deduplication flags -----------------===//
//
// Part of graphit-ordered, an independent C++ reproduction of "Optimizing
// Ordered Graph Algorithms with GraphIt" (CGO 2020). MIT License.
//
//===----------------------------------------------------------------------===//

#include "runtime/Dedup.h"

#include "support/Atomics.h"
#include "support/Parallel.h"

#include <algorithm>

using namespace graphit;

DedupFlags::DedupFlags(Count NumNodes)
    : Flags(static_cast<size_t>(NumNodes), 0) {}

bool DedupFlags::claim(VertexId V) {
  // The cheap pre-check must be an atomic (relaxed) load: another thread
  // may CAS the same byte concurrently, and a plain load there is a data
  // race (TSan) with no upside — relaxed compiles to the same plain mov.
  if (atomicLoadRelaxed(&Flags[V]))
    return false;
  return atomicCAS<uint8_t>(&Flags[V], 0, 1);
}

void DedupFlags::release(const VertexId *Ids, Count N) {
  parallelFor(
      0, N, [&](Count I) { Flags[Ids[I]] = 0; },
      Parallelization::StaticVertexParallel);
}

void DedupFlags::releaseAll() { std::fill(Flags.begin(), Flags.end(), 0); }
