//===- runtime/Traversal.cpp - Direction-optimized edge apply -------------===//
//
// Part of graphit-ordered, an independent C++ reproduction of "Optimizing
// Ordered Graph Algorithms with GraphIt" (CGO 2020). MIT License.
//
//===----------------------------------------------------------------------===//
//
// The traversal engine is a header template (runtime/Traversal.h); this
// translation unit exists to give the library an anchor and to verify the
// header is self-contained.
//
//===----------------------------------------------------------------------===//

#include "runtime/Traversal.h"
