//===- runtime/Dedup.h - Per-vertex deduplication flags ---------*- C++ -*-===//
//
// Part of graphit-ordered, an independent C++ reproduction of "Optimizing
// Ordered Graph Algorithms with GraphIt" (CGO 2020). MIT License.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The deduplication mechanism of the generated lazy code (Fig. 9(a) line
/// 21): a compare-and-swap on per-vertex flags guarantees each destination
/// enters the output buffer at most once per round. Deduplication is
/// required for correctness in k-core (§5.1) and an optimization elsewhere.
///
//===----------------------------------------------------------------------===//

#ifndef GRAPHIT_RUNTIME_DEDUP_H
#define GRAPHIT_RUNTIME_DEDUP_H

#include "support/Types.h"

#include <vector>

namespace graphit {

/// Reusable per-vertex claim flags. `claim` is atomic; `release` clears the
/// listed vertices so the structure can be reused across rounds in O(round
/// size) rather than O(n).
class DedupFlags {
public:
  explicit DedupFlags(Count NumNodes);

  /// Atomically claims \p V. \returns true iff this caller won the claim.
  bool claim(VertexId V);

  /// True if \p V is currently claimed.
  bool isClaimed(VertexId V) const { return Flags[V] != 0; }

  /// Clears the claims for \p Ids (parallel).
  void release(const VertexId *Ids, Count N);

  /// Clears all claims (O(n), for error recovery/tests).
  void releaseAll();

private:
  std::vector<uint8_t> Flags;
};

} // namespace graphit

#endif // GRAPHIT_RUNTIME_DEDUP_H
