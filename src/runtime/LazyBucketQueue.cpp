//===- runtime/LazyBucketQueue.cpp - Julienne-style lazy buckets ----------===//
//
// Part of graphit-ordered, an independent C++ reproduction of "Optimizing
// Ordered Graph Algorithms with GraphIt" (CGO 2020). MIT License.
//
//===----------------------------------------------------------------------===//

#include "runtime/LazyBucketQueue.h"

#include "support/Abort.h"
#include "support/Atomics.h"
#include "support/Parallel.h"
#include "support/TSanAnnotate.h"

#include <algorithm>
#include <cassert>
#include <omp.h>

using namespace graphit;

LazyBucketQueue::LazyBucketQueue(Count N, int NumOpenBuckets,
                                 PriorityOrder Ord)
    : NumNodes(N), NumOpen(std::max(1, NumOpenBuckets)), Order(Ord),
      KeyOf_(static_cast<size_t>(N), kNoBucket),
      Open(static_cast<size_t>(NumOpen)) {}

int64_t LazyBucketQueue::keyOf(VertexId V) const {
  int64_t K = KeyOf_[V];
  return K == kNoBucket ? kNoBucket : fromInternal(K);
}

void LazyBucketQueue::insert(VertexId V, int64_t Key) {
  assert(static_cast<Count>(V) < NumNodes && "vertex out of range");
  int64_t Internal = toInternal(Key);
  if (KeyOf_[V] == kNoBucket)
    ++Pending;
  KeyOf_[V] = Internal;
  place(V, Internal);
}

void LazyBucketQueue::place(VertexId V, int64_t Key) {
  if (!WindowInitialized) {
    Overflow.push_back(V);
    return;
  }
  assert(Key >= WindowStart + CurSlot &&
         "bucket update precedes the current bucket (priority inversion)");
  int64_t Slot = Key - WindowStart;
  if (Slot < NumOpen)
    Open[static_cast<size_t>(Slot)].push_back(V);
  else
    Overflow.push_back(V);
}

void LazyBucketQueue::scatterByStoredKey(const VertexId *Vs, Count M) {
  // Two-pass per-thread counting scatter so each destination vector is
  // resized exactly once. Slots are read back from the authoritative key
  // array, which lets every bulk path — explicit key arrays, fused key
  // functions, and overflow re-bucketing — share this one parallel
  // kernel. Every entry must carry a live key: updateBucketsWith writes
  // one for each vertex right before scattering, and rebucketOverflow
  // filters stale entries first.
  const int NumSlots = NumOpen + 1; // +1 = overflow
  const int OverflowSlot = NumOpen;
  auto SlotOf = [&](Count I) -> int {
    int64_t K = KeyOf_[Vs[I]];
    assert(K != kNoBucket && "stale entry reached the bulk scatter");
    if (!WindowInitialized)
      return OverflowSlot;
    int64_t Slot = K - WindowStart;
    assert(Slot >= CurSlot && "priority inversion in bulk update");
    return Slot < NumOpen ? static_cast<int>(Slot) : OverflowSlot;
  };

  int NumThreads = omp_get_max_threads();
  std::vector<int64_t> SlotCounts(
      static_cast<size_t>(NumThreads) * NumSlots, 0);
  Count ChunkSize = (M + NumThreads - 1) / NumThreads;

  int Tag = 0;
  GRAPHIT_OMP_REGION_ENTER(&Tag);
#pragma omp parallel num_threads(NumThreads)
  {
    GRAPHIT_OMP_REGION_BEGIN(&Tag);
    int T = omp_get_thread_num();
    Count Lo = T * ChunkSize, Hi = std::min(M, Lo + ChunkSize);
    int64_t *Mine = &SlotCounts[static_cast<size_t>(T) * NumSlots];
    for (Count I = Lo; I < Hi; ++I)
      ++Mine[SlotOf(I)];
    GRAPHIT_OMP_REGION_END(&Tag);
  }
  GRAPHIT_OMP_REGION_EXIT(&Tag);

  // Base write offset for (thread, slot), and final size per slot.
  for (int S = 0; S < NumSlots; ++S) {
    std::vector<VertexId> &Dest = S < NumOpen ? Open[S] : Overflow;
    int64_t Base = static_cast<int64_t>(Dest.size());
    for (int T = 0; T < NumThreads; ++T) {
      int64_t C = SlotCounts[static_cast<size_t>(T) * NumSlots + S];
      SlotCounts[static_cast<size_t>(T) * NumSlots + S] = Base;
      Base += C;
    }
    Dest.resize(static_cast<size_t>(Base));
  }

  GRAPHIT_OMP_REGION_ENTER(&Tag);
#pragma omp parallel num_threads(NumThreads)
  {
    GRAPHIT_OMP_REGION_BEGIN(&Tag);
    int T = omp_get_thread_num();
    Count Lo = T * ChunkSize, Hi = std::min(M, Lo + ChunkSize);
    int64_t *Mine = &SlotCounts[static_cast<size_t>(T) * NumSlots];
    for (Count I = Lo; I < Hi; ++I) {
      int S = SlotOf(I);
      std::vector<VertexId> &Dest = S < NumOpen ? Open[S] : Overflow;
      Dest[static_cast<size_t>(Mine[S]++)] = Vs[I];
    }
    GRAPHIT_OMP_REGION_END(&Tag);
  }
  GRAPHIT_OMP_REGION_EXIT(&Tag);
}

bool LazyBucketQueue::nextBucket() {
  CurrentBucket.clear();
  if (!WindowInitialized && !rebucketOverflow())
    return false;

  while (true) {
    while (CurSlot < NumOpen) {
      std::vector<VertexId> &Arr = Open[static_cast<size_t>(CurSlot)];
      if (Arr.empty()) {
        ++CurSlot;
        continue;
      }
      int64_t SlotKey = WindowStart + CurSlot;
      extractValid(Arr, SlotKey);
      Arr.clear();
      if (!CurrentBucket.empty()) {
        Pending -= static_cast<Count>(CurrentBucket.size());
        CurrentKeyUser = fromInternal(SlotKey);
        return true;
      }
      // Bucket held only stale entries; retry the same slot (new entries
      // may have been added for this key) — but it is now empty, so the
      // loop advances.
    }
    if (!rebucketOverflow())
      return false;
  }
}

void LazyBucketQueue::extractValid(std::vector<VertexId> &Arr,
                                   int64_t SlotKey) {
  Count N = static_cast<Count>(Arr.size());
  auto TryClaim = [&](VertexId V) {
    // Relaxed atomic read: duplicate entries in Arr make concurrent
    // TryClaim calls on the same vertex possible, and the pre-check would
    // otherwise race with the winning thread's CAS.
    int64_t K = atomicLoadRelaxed(&KeyOf_[V]);
    // `<=` instead of `==` is defensive: with monotone priority updates
    // (asserted in place()) stale entries always have K==kNoBucket or a
    // *later* key, never an earlier one.
    return K != kNoBucket && K <= SlotKey &&
           atomicCAS(&KeyOf_[V], K, kNoBucket);
  };

  if (N < kBulkParallelCutoff) {
    for (VertexId V : Arr)
      if (TryClaim(V))
        CurrentBucket.push_back(V);
    return;
  }

  // Parallel: claim in one pass, marking losers in place (the caller
  // clears Arr afterwards, so it doubles as the mark buffer), then pack
  // the winners — order-preserving and deterministic, with no extra count
  // pass or per-entry flag array.
  parallelFor(
      0, N,
      [&](Count I) {
        if (!TryClaim(Arr[I]))
          Arr[I] = kInvalidVertex;
      },
      Parallelization::StaticVertexParallel);
  Count Base = static_cast<Count>(CurrentBucket.size());
  CurrentBucket.resize(static_cast<size_t>(Base + N));
  Count Kept =
      parallelPack(Arr.data(), N, CurrentBucket.data() + Base,
                   [](VertexId V) { return V != kInvalidVertex; });
  CurrentBucket.resize(static_cast<size_t>(Base + Kept));
}

bool LazyBucketQueue::rebucketOverflow() {
  if (Overflow.empty())
    return false;
  ++OverflowRebuckets;

  // Drop stale entries with a parallel pack into recycled scratch storage,
  // then find the new window start over the survivors only.
  Count N = static_cast<Count>(Overflow.size());
  Scratch.resize(static_cast<size_t>(N));
  Count Valid =
      parallelPack(Overflow.data(), N, Scratch.data(),
                   [this](VertexId V) { return KeyOf_[V] != kNoBucket; });
  Overflow.clear();
  if (Valid == 0)
    return false;

  int64_t MinKey = parallelMin(0, Valid, kNoValidKey, [&](Count I) {
    return KeyOf_[Scratch[I]];
  });

  WindowStart = MinKey;
  CurSlot = 0;
  WindowInitialized = true;

  // The survivors' keys are authoritative, so the shared parallel scatter
  // re-buckets them (the old serial loop over the whole overflow array was
  // the last single-threaded pass on this path). Small survivor sets skip
  // the fork/join like every other bulk path.
  if (Valid < kBulkParallelCutoff) {
    for (Count I = 0; I < Valid; ++I)
      place(Scratch[I], KeyOf_[Scratch[I]]);
  } else {
    scatterByStoredKey(Scratch.data(), Valid);
  }
  return true;
}

//===----------------------------------------------------------------------===//
// LambdaBucketQueue
//===----------------------------------------------------------------------===//

void LambdaBucketQueue::insertAll() {
  Count N = Queue.numNodes();
  std::vector<VertexId> Ids;
  std::vector<int64_t> Keys;
  Ids.reserve(static_cast<size_t>(N));
  Keys.reserve(static_cast<size_t>(N));
  for (Count V = 0; V < N; ++V) {
    int64_t K = Key(static_cast<VertexId>(V));
    if (K == LazyBucketQueue::kNoBucket)
      continue;
    Ids.push_back(static_cast<VertexId>(V));
    Keys.push_back(K);
  }
  Queue.updateBuckets(Ids.data(), Keys.data(),
                      static_cast<Count>(Ids.size()));
}

void LambdaBucketQueue::updateBuckets(const VertexId *Vs, Count M) {
  ScratchKeys.resize(static_cast<size_t>(M));
  // One indirect user-function call per vertex: Julienne's original
  // interface design, whose overhead §5.1 calls out.
  parallelFor(
      0, M, [&](Count I) { ScratchKeys[I] = Key(Vs[I]); },
      Parallelization::StaticVertexParallel);
  Queue.updateBuckets(Vs, ScratchKeys.data(), M);
}
