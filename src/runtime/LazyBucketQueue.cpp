//===- runtime/LazyBucketQueue.cpp - Julienne-style lazy buckets ----------===//
//
// Part of graphit-ordered, an independent C++ reproduction of "Optimizing
// Ordered Graph Algorithms with GraphIt" (CGO 2020). MIT License.
//
//===----------------------------------------------------------------------===//

#include "runtime/LazyBucketQueue.h"

#include "support/Abort.h"
#include "support/Atomics.h"
#include "support/Parallel.h"

#include <algorithm>
#include <cassert>
#include <omp.h>

using namespace graphit;

namespace {

/// Threshold below which bulk operations run serially; lazy bucketing's
/// per-round overhead on tiny rounds is part of what Table 7 measures, but
/// a parallel scatter on a 4-element round would overstate it absurdly.
constexpr Count kSerialCutoff = 4096;

} // namespace

LazyBucketQueue::LazyBucketQueue(Count NumNodes, int NumOpenBuckets,
                                 PriorityOrder Order)
    : NumNodes(NumNodes), NumOpen(std::max(1, NumOpenBuckets)), Order(Order),
      KeyOf_(static_cast<size_t>(NumNodes), kNoBucket),
      Open(static_cast<size_t>(NumOpen)) {}

int64_t LazyBucketQueue::keyOf(VertexId V) const {
  int64_t K = KeyOf_[V];
  return K == kNoBucket ? kNoBucket : fromInternal(K);
}

void LazyBucketQueue::insert(VertexId V, int64_t Key) {
  assert(static_cast<Count>(V) < NumNodes && "vertex out of range");
  int64_t Internal = toInternal(Key);
  if (KeyOf_[V] == kNoBucket)
    ++Pending;
  KeyOf_[V] = Internal;
  place(V, Internal);
}

void LazyBucketQueue::place(VertexId V, int64_t Key) {
  if (!WindowInitialized) {
    Overflow.push_back(V);
    return;
  }
  assert(Key >= WindowStart + CurSlot &&
         "bucket update precedes the current bucket (priority inversion)");
  int64_t Slot = Key - WindowStart;
  if (Slot < NumOpen)
    Open[static_cast<size_t>(Slot)].push_back(V);
  else
    Overflow.push_back(V);
}

void LazyBucketQueue::updateBuckets(const VertexId *Vs, const int64_t *Keys,
                                    Count M) {
  if (M == 0)
    return;

  if (M < kSerialCutoff) {
    for (Count I = 0; I < M; ++I)
      insert(Vs[I], Keys[I]);
    return;
  }

  // Update authoritative keys and count fresh insertions.
  int64_t Fresh = 0;
#pragma omp parallel for schedule(static) reduction(+ : Fresh)
  for (Count I = 0; I < M; ++I) {
    VertexId V = Vs[I];
    if (KeyOf_[V] == kNoBucket)
      ++Fresh;
    KeyOf_[V] = toInternal(Keys[I]);
  }
  Pending += Fresh;

  // Scatter into bucket arrays: two-pass per-thread counting so each
  // destination vector is resized exactly once.
  int NumSlots = NumOpen + 1; // +1 = overflow
  auto SlotOf = [&](Count I) -> int {
    if (!WindowInitialized)
      return NumOpen;
    int64_t Slot = toInternal(Keys[I]) - WindowStart;
    assert(Slot >= CurSlot && "priority inversion in bulk update");
    return Slot < NumOpen ? static_cast<int>(Slot) : NumOpen;
  };

  int NumThreads = omp_get_max_threads();
  std::vector<int64_t> SlotCounts(
      static_cast<size_t>(NumThreads) * NumSlots, 0);
  Count ChunkSize = (M + NumThreads - 1) / NumThreads;

#pragma omp parallel num_threads(NumThreads)
  {
    int T = omp_get_thread_num();
    Count Lo = T * ChunkSize, Hi = std::min(M, Lo + ChunkSize);
    int64_t *Mine = &SlotCounts[static_cast<size_t>(T) * NumSlots];
    for (Count I = Lo; I < Hi; ++I)
      ++Mine[SlotOf(I)];
  }

  // Base write offset for (thread, slot), and final size per slot.
  std::vector<int64_t> SlotBase(NumSlots, 0);
  for (int S = 0; S < NumSlots; ++S) {
    std::vector<VertexId> &Dest = S < NumOpen ? Open[S] : Overflow;
    int64_t Base = static_cast<int64_t>(Dest.size());
    for (int T = 0; T < NumThreads; ++T) {
      int64_t C = SlotCounts[static_cast<size_t>(T) * NumSlots + S];
      SlotCounts[static_cast<size_t>(T) * NumSlots + S] = Base;
      Base += C;
    }
    SlotBase[S] = Base; // final size
    Dest.resize(static_cast<size_t>(Base));
  }

#pragma omp parallel num_threads(NumThreads)
  {
    int T = omp_get_thread_num();
    Count Lo = T * ChunkSize, Hi = std::min(M, Lo + ChunkSize);
    int64_t *Mine = &SlotCounts[static_cast<size_t>(T) * NumSlots];
    for (Count I = Lo; I < Hi; ++I) {
      int S = SlotOf(I);
      std::vector<VertexId> &Dest = S < NumOpen ? Open[S] : Overflow;
      Dest[static_cast<size_t>(Mine[S]++)] = Vs[I];
    }
  }
}

bool LazyBucketQueue::nextBucket() {
  CurrentBucket.clear();
  if (!WindowInitialized && !rebucketOverflow())
    return false;

  while (true) {
    while (CurSlot < NumOpen) {
      std::vector<VertexId> &Arr = Open[static_cast<size_t>(CurSlot)];
      if (Arr.empty()) {
        ++CurSlot;
        continue;
      }
      int64_t SlotKey = WindowStart + CurSlot;
      extractValid(Arr, SlotKey);
      Arr.clear();
      if (!CurrentBucket.empty()) {
        Pending -= static_cast<Count>(CurrentBucket.size());
        CurrentKeyUser = fromInternal(SlotKey);
        return true;
      }
      // Bucket held only stale entries; retry the same slot (new entries
      // may have been added for this key) — but it is now empty, so the
      // loop advances.
    }
    if (!rebucketOverflow())
      return false;
  }
}

void LazyBucketQueue::extractValid(std::vector<VertexId> &Arr,
                                   int64_t SlotKey) {
  Count N = static_cast<Count>(Arr.size());
  auto TryClaim = [&](VertexId V) {
    int64_t K = KeyOf_[V];
    // `<=` instead of `==` is defensive: with monotone priority updates
    // (asserted in place()) stale entries always have K==kNoBucket or a
    // *later* key, never an earlier one.
    return K != kNoBucket && K <= SlotKey &&
           atomicCAS(&KeyOf_[V], K, kNoBucket);
  };

  if (N < kSerialCutoff) {
    for (VertexId V : Arr)
      if (TryClaim(V))
        CurrentBucket.push_back(V);
    return;
  }

  // Parallel: claim in one pass (side-effecting), then pack by the
  // recorded outcome.
  std::vector<uint8_t> Won(static_cast<size_t>(N));
  parallelFor(
      0, N, [&](Count I) { Won[I] = TryClaim(Arr[I]) ? 1 : 0; },
      Parallelization::StaticVertexParallel);
  Count Base = static_cast<Count>(CurrentBucket.size());
  Count Total = parallelSum(0, N, [&](Count I) { return Won[I] ? 1 : 0; });
  CurrentBucket.resize(static_cast<size_t>(Base + Total));
  // Sequential placement of winners preserves order deterministically.
  Count Pos = Base;
  for (Count I = 0; I < N; ++I)
    if (Won[I])
      CurrentBucket[static_cast<size_t>(Pos++)] = Arr[I];
}

bool LazyBucketQueue::rebucketOverflow() {
  if (Overflow.empty())
    return false;
  ++OverflowRebuckets;

  Count N = static_cast<Count>(Overflow.size());
  int64_t MinKey = parallelMin(0, N, kNoValidKey, [&](Count I) {
    int64_t K = KeyOf_[Overflow[I]];
    return K == kNoBucket ? kNoValidKey : K;
  });
  if (MinKey == kNoValidKey) {
    Overflow.clear();
    return false;
  }

  WindowStart = MinKey;
  CurSlot = 0;
  WindowInitialized = true;

  std::vector<VertexId> Old = std::move(Overflow);
  Overflow.clear();
  for (VertexId V : Old) {
    int64_t K = KeyOf_[V];
    if (K == kNoBucket)
      continue; // stale
    int64_t Slot = K - WindowStart;
    if (Slot < NumOpen)
      Open[static_cast<size_t>(Slot)].push_back(V);
    else
      Overflow.push_back(V);
  }
  return true;
}

//===----------------------------------------------------------------------===//
// LambdaBucketQueue
//===----------------------------------------------------------------------===//

void LambdaBucketQueue::insertAll() {
  Count N = Queue.numNodes();
  std::vector<VertexId> Ids;
  std::vector<int64_t> Keys;
  Ids.reserve(static_cast<size_t>(N));
  Keys.reserve(static_cast<size_t>(N));
  for (Count V = 0; V < N; ++V) {
    int64_t K = Key(static_cast<VertexId>(V));
    if (K == LazyBucketQueue::kNoBucket)
      continue;
    Ids.push_back(static_cast<VertexId>(V));
    Keys.push_back(K);
  }
  Queue.updateBuckets(Ids.data(), Keys.data(),
                      static_cast<Count>(Ids.size()));
}

void LambdaBucketQueue::updateBuckets(const VertexId *Vs, Count M) {
  ScratchKeys.resize(static_cast<size_t>(M));
  // One indirect user-function call per vertex: Julienne's original
  // interface design, whose overhead §5.1 calls out.
  parallelFor(
      0, M, [&](Count I) { ScratchKeys[I] = Key(Vs[I]); },
      Parallelization::StaticVertexParallel);
  Queue.updateBuckets(Vs, ScratchKeys.data(), M);
}
