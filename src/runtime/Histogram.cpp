//===- runtime/Histogram.cpp - Constant-sum update reduction --------------===//
//
// Part of graphit-ordered, an independent C++ reproduction of "Optimizing
// Ordered Graph Algorithms with GraphIt" (CGO 2020). MIT License.
//
//===----------------------------------------------------------------------===//

#include "runtime/Histogram.h"

#include "support/Atomics.h"
#include "support/Parallel.h"
#include "support/Random.h"
#include "support/TSanAnnotate.h"

#include <omp.h>

using namespace graphit;

HistogramBuffer::HistogramBuffer(Count NumNodes)
    : Counts(static_cast<size_t>(NumNodes), 0),
      Touched(static_cast<size_t>(NumNodes), 0) {}

void HistogramBuffer::reduce(const VertexId *Targets, Count M,
                             HistogramMethod Method,
                             std::vector<VertexId> &UniqueOut,
                             std::vector<uint32_t> &CountsOut) {
  UniqueOut.clear();
  CountsOut.clear();
  if (M == 0)
    return;
  if (M < 4096) {
    // Small rounds: serial counting beats any parallel scheme.
    for (Count I = 0; I < M; ++I) {
      VertexId V = Targets[I];
      if (!Touched[V]) {
        Touched[V] = 1;
        UniqueOut.push_back(V);
      }
      ++Counts[V];
    }
    CountsOut.resize(UniqueOut.size());
    for (size_t I = 0; I < UniqueOut.size(); ++I) {
      CountsOut[I] = Counts[UniqueOut[I]];
      Counts[UniqueOut[I]] = 0;
      Touched[UniqueOut[I]] = 0;
    }
    return;
  }
  if (Method == HistogramMethod::AtomicCounts)
    reduceAtomic(Targets, M, UniqueOut, CountsOut);
  else
    reduceLocalTables(Targets, M, UniqueOut, CountsOut);

  // Reset the touched counters for the next round (O(distinct)).
  parallelFor(
      0, static_cast<Count>(UniqueOut.size()),
      [&](Count I) {
        Counts[UniqueOut[I]] = 0;
        Touched[UniqueOut[I]] = 0;
      },
      Parallelization::StaticVertexParallel);
}

void HistogramBuffer::reduceAtomic(const VertexId *Targets, Count M,
                                   std::vector<VertexId> &UniqueOut,
                                   std::vector<uint32_t> &CountsOut) {
  int MaxThreads = omp_get_max_threads();
  std::vector<std::vector<VertexId>> LocalUnique(MaxThreads);
  int Tag = 0;
  GRAPHIT_OMP_REGION_ENTER(&Tag);
#pragma omp parallel
  {
    GRAPHIT_OMP_REGION_BEGIN(&Tag);
    std::vector<VertexId> &Mine = LocalUnique[omp_get_thread_num()];
#pragma omp for schedule(static) nowait
    for (Count I = 0; I < M; ++I) {
      VertexId V = Targets[I];
      fetchAdd(&Counts[V], 1u);
      // Relaxed atomic pre-check: a plain `Touched[V]` read here races
      // with the CAS another thread may be performing on the same byte.
      if (!atomicLoadRelaxed(&Touched[V]) &&
          atomicCAS<uint8_t>(&Touched[V], 0, 1))
        Mine.push_back(V);
    }
    GRAPHIT_OMP_REGION_END(&Tag);
  }
  GRAPHIT_OMP_REGION_EXIT(&Tag);
  for (const std::vector<VertexId> &L : LocalUnique)
    UniqueOut.insert(UniqueOut.end(), L.begin(), L.end());
  CountsOut.resize(UniqueOut.size());
  parallelFor(
      0, static_cast<Count>(UniqueOut.size()),
      [&](Count I) { CountsOut[I] = Counts[UniqueOut[I]]; },
      Parallelization::StaticVertexParallel);
}

void HistogramBuffer::reduceLocalTables(const VertexId *Targets, Count M,
                                        std::vector<VertexId> &UniqueOut,
                                        std::vector<uint32_t> &CountsOut) {
  int MaxThreads = omp_get_max_threads();
  std::vector<std::vector<VertexId>> LocalUnique(MaxThreads);
  int Tag = 0;
  GRAPHIT_OMP_REGION_ENTER(&Tag);
#pragma omp parallel
  {
    GRAPHIT_OMP_REGION_BEGIN(&Tag);
    std::vector<VertexId> &Mine = LocalUnique[omp_get_thread_num()];
    // Per-thread open-addressing table sized for this thread's chunk.
    Count ChunkGuess = M / MaxThreads + 64;
    size_t TableSize = 64;
    while (TableSize < static_cast<size_t>(ChunkGuess) * 2)
      TableSize <<= 1;
    std::vector<VertexId> Keys(TableSize, kInvalidVertex);
    std::vector<uint32_t> Vals(TableSize, 0);
    size_t Mask = TableSize - 1;
    size_t Used = 0;

    auto FlushTable = [&]() {
      for (size_t S = 0; S < TableSize; ++S) {
        if (Keys[S] == kInvalidVertex)
          continue;
        VertexId V = Keys[S];
        fetchAdd(&Counts[V], Vals[S]);
        // Same relaxed pre-check as reduceAtomic: plain reads race with
        // concurrent CAS claims on the shared Touched bytes.
        if (!atomicLoadRelaxed(&Touched[V]) &&
            atomicCAS<uint8_t>(&Touched[V], 0, 1))
          Mine.push_back(V);
        Keys[S] = kInvalidVertex;
        Vals[S] = 0;
      }
      Used = 0;
    };

#pragma omp for schedule(static)
    for (Count I = 0; I < M; ++I) {
      VertexId V = Targets[I];
      size_t Slot = hash64(V) & Mask;
      while (true) {
        if (Keys[Slot] == V) {
          ++Vals[Slot];
          break;
        }
        if (Keys[Slot] == kInvalidVertex) {
          Keys[Slot] = V;
          Vals[Slot] = 1;
          if (++Used * 2 > TableSize)
            FlushTable(); // table saturated: merge early and start fresh
          break;
        }
        Slot = (Slot + 1) & Mask;
      }
    }
    FlushTable();
    GRAPHIT_OMP_REGION_END(&Tag);
  }
  GRAPHIT_OMP_REGION_EXIT(&Tag);

  for (const std::vector<VertexId> &L : LocalUnique)
    UniqueOut.insert(UniqueOut.end(), L.begin(), L.end());
  CountsOut.resize(UniqueOut.size());
  parallelFor(
      0, static_cast<Count>(UniqueOut.size()),
      [&](Count I) { CountsOut[I] = Counts[UniqueOut[I]]; },
      Parallelization::StaticVertexParallel);
}
