//===- runtime/VertexSubset.cpp - Sparse/dense vertex sets ----------------===//
//
// Part of graphit-ordered, an independent C++ reproduction of "Optimizing
// Ordered Graph Algorithms with GraphIt" (CGO 2020). MIT License.
//
//===----------------------------------------------------------------------===//

#include "runtime/VertexSubset.h"

#include "support/Abort.h"
#include "support/Atomics.h"
#include "support/Parallel.h"

#include <algorithm>

using namespace graphit;

VertexSubset VertexSubset::empty(Count NumNodes) {
  VertexSubset S(NumNodes, 0);
  S.SparseValid = true;
  return S;
}

VertexSubset VertexSubset::single(Count NumNodes, VertexId V) {
  assert(static_cast<Count>(V) < NumNodes && "vertex out of range");
  VertexSubset S(NumNodes, 1);
  S.SparseValid = true;
  S.Sparse = {V};
  return S;
}

VertexSubset VertexSubset::fromSparse(Count NumNodes,
                                      std::vector<VertexId> Ids) {
  VertexSubset S(NumNodes, static_cast<Count>(Ids.size()));
  S.SparseValid = true;
  S.Sparse = std::move(Ids);
  return S;
}

VertexSubset VertexSubset::fromDense(Count NumNodes,
                                     std::vector<uint8_t> Flags) {
  if (static_cast<Count>(Flags.size()) != NumNodes)
    fatalError("VertexSubset::fromDense: flag size mismatch");
  Count Size = parallelSum(0, NumNodes,
                           [&](Count I) { return Flags[I] ? 1 : 0; });
  VertexSubset S(NumNodes, Size);
  S.DenseValid = true;
  S.Dense = std::move(Flags);
  return S;
}

const std::vector<VertexId> &VertexSubset::sparse() {
  if (SparseValid)
    return Sparse;
  assert(DenseValid && "subset has no representation");
  // Stable parallel pack of set bits, in index order (the counted size is
  // exact, so the pack fills the allocation completely).
  Sparse.resize(static_cast<size_t>(Size));
  Count Packed = parallelPackIndex(
      NumNodes, Sparse.data(), [this](Count I) { return Dense[I] != 0; });
  (void)Packed;
  assert(Packed == Size && "dense flag count drifted from Size");
  SparseValid = true;
  return Sparse;
}

const std::vector<uint8_t> &VertexSubset::dense() {
  if (DenseValid)
    return Dense;
  assert(SparseValid && "subset has no representation");
  Dense.assign(static_cast<size_t>(NumNodes), 0);
  parallelFor(
      0, static_cast<Count>(Sparse.size()),
      [&](Count I) { Dense[Sparse[I]] = 1; },
      Parallelization::StaticVertexParallel);
  DenseValid = true;
  return Dense;
}

bool VertexSubset::contains(VertexId V) {
  assert(static_cast<Count>(V) < NumNodes && "vertex out of range");
  if (DenseValid)
    return Dense[V] != 0;
  // Tiny sparse sets: a scan beats materializing the dense map. Anything
  // larger materializes dense() once and answers every later query in
  // O(1) instead of O(n) per call.
  if (Size <= kContainsScanCutoff)
    return std::find(Sparse.begin(), Sparse.end(), V) != Sparse.end();
  return dense()[V] != 0;
}
