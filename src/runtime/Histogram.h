//===- runtime/Histogram.h - Constant-sum update reduction ------*- C++ -*-===//
//
// Part of graphit-ordered, an independent C++ reproduction of "Optimizing
// Ordered Graph Algorithms with GraphIt" (CGO 2020). MIT License.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The histogram-based reduction behind the `lazy_constant_sum` schedule
/// (§5.1, Fig. 10). When a user-defined function always changes a priority
/// by the same constant, the per-edge updates can be replaced by *counting*
/// the updates per destination and applying the transformed function once
/// per destination with the count. This avoids atomic contention on
/// high-degree vertices (the k-core bottleneck).
///
/// Two implementations are provided and compared in `bench/micro_buckets`:
///
///  * `AtomicCounts`  - one fetch_add per occurrence on a shared count
///    array; distinct targets are discovered with a claim flag.
///  * `LocalTables`   - per-thread open-addressing tables pre-aggregate
///    counts, then one atomic merge per (thread, distinct target) pair —
///    the semisort-flavored scheme Julienne's histogram approximates.
///
//===----------------------------------------------------------------------===//

#ifndef GRAPHIT_RUNTIME_HISTOGRAM_H
#define GRAPHIT_RUNTIME_HISTOGRAM_H

#include "support/Types.h"

#include <vector>

namespace graphit {

/// Which reduction scheme `HistogramBuffer::reduce` uses.
enum class HistogramMethod { AtomicCounts, LocalTables };

/// Reusable buffers for counting duplicate targets. One instance per
/// algorithm run; `reduce` may be called once per round.
class HistogramBuffer {
public:
  explicit HistogramBuffer(Count NumNodes);

  /// Counts occurrences of each vertex in `Targets[0..M)` (duplicates
  /// expected). Produces the distinct ids in \p UniqueOut and their counts
  /// in \p CountsOut (parallel-unordered). Internal state is reset before
  /// returning, so back-to-back calls are safe.
  void reduce(const VertexId *Targets, Count M, HistogramMethod Method,
              std::vector<VertexId> &UniqueOut,
              std::vector<uint32_t> &CountsOut);

private:
  void reduceAtomic(const VertexId *Targets, Count M,
                    std::vector<VertexId> &UniqueOut,
                    std::vector<uint32_t> &CountsOut);
  void reduceLocalTables(const VertexId *Targets, Count M,
                         std::vector<VertexId> &UniqueOut,
                         std::vector<uint32_t> &CountsOut);

  std::vector<uint32_t> Counts; ///< per-vertex occurrence counters
  std::vector<uint8_t> Touched; ///< claim flags for distinct discovery
};

} // namespace graphit

#endif // GRAPHIT_RUNTIME_HISTOGRAM_H
