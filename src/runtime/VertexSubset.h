//===- runtime/VertexSubset.h - Sparse/dense vertex sets --------*- C++ -*-===//
//
// Part of graphit-ordered, an independent C++ reproduction of "Optimizing
// Ordered Graph Algorithms with GraphIt" (CGO 2020). MIT License.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Ligra-style vertex subsets with dual sparse (id array) and dense (boolean
/// map) representations. Frontiers and dequeued buckets are `VertexSubset`s;
/// the direction optimization (Fig. 9(a) vs 9(b)) chooses which
/// representation a traversal consumes.
///
//===----------------------------------------------------------------------===//

#ifndef GRAPHIT_RUNTIME_VERTEXSUBSET_H
#define GRAPHIT_RUNTIME_VERTEXSUBSET_H

#include "support/Types.h"

#include <cassert>
#include <vector>

namespace graphit {

/// A subset of the vertices [0, NumNodes). Immutable size; representation
/// can be materialized in either or both forms.
///
/// Materialization is lazy, so the accessors (`sparse`, `dense`,
/// `contains`) mutate internal state and are NOT safe to call concurrently
/// on the same subset — materialize once before handing a subset to
/// parallel readers.
class VertexSubset {
public:
  /// Empty subset over \p NumNodes vertices.
  static VertexSubset empty(Count NumNodes);

  /// Singleton subset {V}.
  static VertexSubset single(Count NumNodes, VertexId V);

  /// Subset from an id array (need not be sorted; must not contain
  /// duplicates).
  static VertexSubset fromSparse(Count NumNodes, std::vector<VertexId> Ids);

  /// Subset from a boolean map (nonzero = member).
  static VertexSubset fromDense(Count NumNodes, std::vector<uint8_t> Flags);

  /// Number of vertices in the universe.
  Count numNodes() const { return NumNodes; }
  /// Number of members.
  Count size() const { return Size; }
  bool isEmpty() const { return Size == 0; }

  /// True if the sparse (dense) representation is materialized.
  bool hasSparse() const { return SparseValid; }
  bool hasDense() const { return DenseValid; }

  /// Materializes the sparse representation if needed and returns it.
  const std::vector<VertexId> &sparse();
  /// Materializes the dense representation if needed and returns it.
  const std::vector<uint8_t> &dense();

  /// Membership test. Answers from the dense map when it exists; for
  /// sparse-only subsets above `kContainsScanCutoff` members it
  /// materializes the dense map once (hence non-const) so repeated queries
  /// are O(1) rather than an O(n) scan each.
  bool contains(VertexId V);

  /// Largest sparse-only subset `contains` scans linearly instead of
  /// materializing the dense map.
  static constexpr Count kContainsScanCutoff = 64;

  /// Applies \p Body to every member (parallel when sparse is available).
  template <typename Fn> void forEach(Fn &&Body) {
    const std::vector<VertexId> &Ids = sparse();
    for (VertexId V : Ids)
      Body(V);
  }

private:
  VertexSubset(Count N, Count Sz) : NumNodes(N), Size(Sz) {}

  Count NumNodes;
  Count Size;
  bool SparseValid = false;
  bool DenseValid = false;
  std::vector<VertexId> Sparse;
  std::vector<uint8_t> Dense;
};

} // namespace graphit

#endif // GRAPHIT_RUNTIME_VERTEXSUBSET_H
