//===- runtime/Traversal.h - Direction-optimized edge apply -----*- C++ -*-===//
//
// Part of graphit-ordered, an independent C++ reproduction of "Optimizing
// Ordered Graph Algorithms with GraphIt" (CGO 2020). MIT License.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The edge-traversal engine used by lazy bucket-update schedules. It
/// mirrors the code GraphIt generates for `applyUpdatePriority` under the
/// `configApplyDirection` options:
///
///  * SparsePush (Fig. 9(a)) - iterate the frontier array, push atomic
///    updates along out-edges, and collect changed destinations through an
///    offsets/pack buffer with CAS deduplication;
///  * DensePull (Fig. 9(b)) - iterate all vertices, pull non-atomic updates
///    along in-edges from frontier members, and collect changes in a dense
///    boolean map (no destination atomics, no dedup flags);
///  * Hybrid - choose per round by comparing the frontier's out-degree sum
///    against |E|/20 (the Ligra/GraphIt threshold). Computing that sum every
///    round is exactly the overhead §6.2 attributes to Julienne.
///
//===----------------------------------------------------------------------===//

#ifndef GRAPHIT_RUNTIME_TRAVERSAL_H
#define GRAPHIT_RUNTIME_TRAVERSAL_H

#include "graph/Graph.h"
#include "runtime/Dedup.h"
#include "support/Parallel.h"
#include "support/Prefetch.h"

#include <algorithm>
#include <vector>

namespace graphit {

/// Edge traversal direction (`configApplyDirection`).
enum class Direction { SparsePush, DensePull, Hybrid };

/// Per-round counters reported by the traversal engine.
struct TraversalStats {
  int64_t SparseRounds = 0;
  int64_t DenseRounds = 0;
  int64_t EdgesTraversed = 0;
};

/// Reusable scratch space for `edgeApplyOut`. Construct once per run.
/// Generic over the graph type (CSR `Graph` or the delta-overlay
/// `DeltaGraph` view) — only the vertex count is consulted.
class TraversalBuffers {
public:
  template <typename GraphT>
  explicit TraversalBuffers(const GraphT &G)
      : Dedup(G.numNodes()),
        FrontierDense(static_cast<size_t>(G.numNodes()), 0),
        NextDense(static_cast<size_t>(G.numNodes()), 0) {}

  DedupFlags Dedup;
  std::vector<int64_t> Offsets;
  std::vector<VertexId> OutEdges;
  std::vector<uint8_t> FrontierDense;
  std::vector<uint8_t> NextDense;
  std::vector<VertexId> PackBuf; ///< grow-only pack target, never shrunk
  std::vector<VertexId> Packed;

  /// The pack scratch sized for \p Needed elements. Grow-only, so rounds
  /// after the high-water mark pay no per-round value-initialization.
  VertexId *packScratch(int64_t Needed) {
    if (PackBuf.size() < static_cast<size_t>(Needed))
      PackBuf.resize(static_cast<size_t>(Needed));
    return PackBuf.data();
  }
};

/// Default (no-op) prefetch hook for `edgeApplyOut`. The bool argument is
/// true when the hinted vertex is a pull *source* (its word will only be
/// read) and false for a push destination (its word will be RMW-ed) — a
/// read-for-ownership hint on a shared pull source would ping-pong the
/// line between the destination-owning threads.
struct NoPrefetchFn {
  void operator()(VertexId, bool) const {}
};

/// Applies an update function over the out-edges of \p Frontier and returns
/// the deduplicated list of destinations whose priority changed (stored in
/// `Buffers.Packed`).
///
/// \p Push is `(src, dst, w) -> bool` and must perform its update
/// atomically; \p Pull is the non-atomic variant used under DensePull,
/// where each destination is owned by one thread.
/// \p Prefetch, when provided, is invoked with the vertex on the *other*
/// end of the edge `kPrefetchDistance` slots ahead of the one being
/// applied (the push destination / pull source); callers whose update
/// reads a per-vertex word (a distance array) use it to issue a software
/// prefetch of that word so the scattered miss overlaps the current
/// edge's work.
/// \p GraphT is any type with the `Graph` read interface (`Graph` itself
/// or the live-serving `DeltaGraph` overlay).
template <typename GraphT, typename PushFn, typename PullFn,
          typename PrefetchFn = NoPrefetchFn>
const std::vector<VertexId> &
edgeApplyOut(const GraphT &G, const std::vector<VertexId> &Frontier,
             Direction Dir, Parallelization Par, TraversalBuffers &Buffers,
             PushFn &&Push, PullFn &&Pull, TraversalStats *Stats = nullptr,
             PrefetchFn &&Prefetch = PrefetchFn{}) {
  Count FrontierSize = static_cast<Count>(Frontier.size());

  if (Dir == Direction::Hybrid) {
    // Julienne-style per-round direction selection: pay an out-degree sum.
    int64_t FrontierWork =
        FrontierSize + G.outDegreeSum(Frontier.data(), FrontierSize);
    Dir = (G.hasInEdges() && FrontierWork > G.numEdges() / 20)
              ? Direction::DensePull
              : Direction::SparsePush;
  }

  if (Dir == Direction::DensePull && G.hasInEdges()) {
    if (Stats) {
      ++Stats->DenseRounds;
      Stats->EdgesTraversed += G.numEdges();
    }
    Count N = G.numNodes();
    std::fill(Buffers.FrontierDense.begin(), Buffers.FrontierDense.end(), 0);
    parallelFor(
        0, FrontierSize,
        [&](Count I) { Buffers.FrontierDense[Frontier[I]] = 1; },
        Parallelization::StaticVertexParallel);
    std::fill(Buffers.NextDense.begin(), Buffers.NextDense.end(), 0);
    parallelFor(
        0, N,
        [&](Count D) {
          bool Changed = false;
          auto R = G.inNeighbors(static_cast<VertexId>(D));
          const Count Deg = R.size();
          for (Count J = 0; J < Deg; ++J) {
            if (J + kPrefetchDistance < Deg)
              Prefetch(R.id(J + kPrefetchDistance), /*IsPull=*/true);
            VertexId S = R.id(J);
            if (Buffers.FrontierDense[S] &&
                Pull(S, static_cast<VertexId>(D), R.weight(J)))
              Changed = true;
          }
          if (Changed)
            Buffers.NextDense[D] = 1;
        },
        Par);
    // Pack set bits into the sparse output in parallel (the serial scan
    // here was an O(n)-per-round tax on every dense round).
    VertexId *Scratch = Buffers.packScratch(N);
    Count Kept = parallelPackIndex(
        N, Scratch, [&](Count D) { return Buffers.NextDense[D] != 0; });
    Buffers.Packed.assign(Scratch, Scratch + Kept);
    return Buffers.Packed;
  }

  // SparsePush (Fig. 9(a)): offsets via prefix sum, holes marked invalid,
  // then packed.
  if (Stats)
    ++Stats->SparseRounds;
  Buffers.Offsets.resize(static_cast<size_t>(FrontierSize) + 1);
  parallelFor(
      0, FrontierSize,
      [&](Count I) { Buffers.Offsets[I] = G.outDegree(Frontier[I]); },
      Parallelization::StaticVertexParallel);
  Buffers.Offsets[FrontierSize] = 0;
  int64_t TotalEdges =
      exclusivePrefixSum(Buffers.Offsets.data(), FrontierSize + 1);
  if (Stats)
    Stats->EdgesTraversed += TotalEdges;
  if (Buffers.OutEdges.size() < static_cast<size_t>(TotalEdges))
    Buffers.OutEdges.resize(static_cast<size_t>(TotalEdges));

  parallelFor(
      0, FrontierSize,
      [&](Count I) {
        VertexId S = Frontier[I];
        int64_t Offset = Buffers.Offsets[I];
        auto R = G.outNeighbors(S);
        const Count Deg = R.size();
        for (Count J = 0; J < Deg; ++J) {
          if (J + kPrefetchDistance < Deg)
            Prefetch(R.id(J + kPrefetchDistance), /*IsPull=*/false);
          VertexId D = R.id(J);
          bool TrackingVar = Push(S, D, R.weight(J));
          if (TrackingVar && Buffers.Dedup.claim(D))
            Buffers.OutEdges[Offset + J] = D;
          else
            Buffers.OutEdges[Offset + J] = kInvalidVertex;
        }
      },
      Par);

  VertexId *Scratch = Buffers.packScratch(TotalEdges);
  Count Kept = parallelPack(Buffers.OutEdges.data(), TotalEdges, Scratch,
                            [](VertexId V) { return V != kInvalidVertex; });
  Buffers.Packed.assign(Scratch, Scratch + Kept);
  Buffers.Dedup.release(Buffers.Packed.data(), Kept);
  return Buffers.Packed;
}

} // namespace graphit

#endif // GRAPHIT_RUNTIME_TRAVERSAL_H
