//===- examples/road_routing.cpp - Point-to-point routing -----------------===//
//
// Part of graphit-ordered, an independent C++ reproduction of "Optimizing
// Ordered Graph Algorithms with GraphIt" (CGO 2020). MIT License.
//
//===----------------------------------------------------------------------===//
//
// The workload the paper's road-network experiments model: point-to-point
// route queries. Compares full SSSP, early-exit PPSP, and A* with the
// coordinate heuristic on a synthetic road network, and shows why bucket
// fusion matters on high-diameter graphs.
//
//   ./road_routing [grid_side]
//
//===----------------------------------------------------------------------===//

#include "algorithms/AStar.h"
#include "algorithms/PPSP.h"
#include "algorithms/SSSP.h"
#include "graph/Builder.h"
#include "graph/Generators.h"
#include "support/Random.h"

#include <cstdio>
#include <cstdlib>

using namespace graphit;

int main(int argc, char **argv) {
  Count Side = argc > 1 ? std::atoll(argv[1]) : 512;

  RoadNetwork Net = roadGrid(Side, Side, /*Seed=*/2020);
  BuildOptions Options;
  Options.Symmetrize = true;
  Graph G = GraphBuilder(Options).build(Net.NumNodes, Net.Edges,
                                        std::move(Net.Coords));
  std::printf("road network: %lld intersections, %lld road segments\n",
              (long long)G.numNodes(), (long long)G.numEdges() / 2);

  Schedule Sched;
  Sched.configApplyPriorityUpdate("eager_with_fusion")
      .configApplyPriorityUpdateDelta(8192); // road-tuned Δ (§6.2)

  // A mid-range query (about a third of the way across the map), where
  // early exit and the A* heuristic have room to prune.
  VertexId Src = 0;
  auto Dst = static_cast<VertexId>(G.numNodes() / 3);

  SSSPResult Full = deltaSteppingSSSP(G, Src, Sched);
  std::printf("full SSSP:  dist=%lld  %.4fs  (%lld vertices touched)\n",
              (long long)Full.Dist[Dst], Full.Stats.Seconds,
              (long long)Full.Stats.VerticesProcessed);

  PPSPResult P = pointToPointShortestPath(G, Src, Dst, Sched);
  std::printf("PPSP:       dist=%lld  %.4fs  (%lld vertices touched)\n",
              (long long)P.Dist, P.Stats.Seconds,
              (long long)P.Stats.VerticesProcessed);

  PPSPResult A = aStarSearch(G, Src, Dst, Sched);
  std::printf("A*:         dist=%lld  %.4fs  (%lld vertices touched)\n",
              (long long)A.Dist, A.Stats.Seconds,
              (long long)A.Stats.VerticesProcessed);

  bool Agree = Full.Dist[Dst] == P.Dist && P.Dist == A.Dist;
  std::printf("all three agree: %s\n", Agree ? "yes" : "NO");

  // Bucket fusion ablation on this graph (Table 6's effect).
  Schedule NoFusion = Sched;
  NoFusion.configApplyPriorityUpdate("eager_no_fusion");
  SSSPResult Plain = deltaSteppingSSSP(G, Src, NoFusion);
  std::printf("\nbucket fusion on this network:\n");
  std::printf("  with fusion:    %.4fs  [%lld rounds]\n",
              Full.Stats.Seconds, (long long)Full.Stats.Rounds);
  std::printf("  without fusion: %.4fs  [%lld rounds]\n",
              Plain.Stats.Seconds, (long long)Plain.Stats.Rounds);
  return Agree ? 0 : 1;
}
