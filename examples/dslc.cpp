//===- examples/dslc.cpp - The DSL compiler driver ------------------------===//
//
// Part of graphit-ordered, an independent C++ reproduction of "Optimizing
// Ordered Graph Algorithms with GraphIt" (CGO 2020). MIT License.
//
//===----------------------------------------------------------------------===//
//
// Command-line front door to the priority-extension compiler, mirroring
// the paper's graphitc workflow:
//
//   ./dslc <program.gt> [schedule] [--run] [--source V] [--dest V]
//
// Prints the analysis report and the generated C++ for the schedule
// (default "eager_with_fusion,delta=4"). With --run, also executes the
// program through the interpreter on a small built-in road network and
// prints result checksums — the full parse/analyze/execute pipeline, no
// external compiler needed.
//
//===----------------------------------------------------------------------===//

#include "dsl/Driver.h"

#include "algorithms/AStar.h"
#include "graph/Builder.h"
#include "graph/Generators.h"

#include <cstdio>
#include <cstring>
#include <string>

using namespace graphit;
using namespace graphit::dsl;

int main(int argc, char **argv) {
  if (argc < 2) {
    std::fprintf(stderr,
                 "usage: %s <program.gt> [schedule] [--run] [--source V] "
                 "[--dest V]\n",
                 argv[0]);
    return 1;
  }
  std::string Path = argv[1];
  std::string SchedSpec = "eager_with_fusion,delta=4";
  bool Run = false;
  VertexId Source = 0, Dest = 25;
  for (int I = 2; I < argc; ++I) {
    if (std::strcmp(argv[I], "--run") == 0)
      Run = true;
    else if (std::strcmp(argv[I], "--source") == 0 && I + 1 < argc)
      Source = static_cast<VertexId>(std::atoll(argv[++I]));
    else if (std::strcmp(argv[I], "--dest") == 0 && I + 1 < argc)
      Dest = static_cast<VertexId>(std::atoll(argv[++I]));
    else
      SchedSpec = argv[I];
  }

  std::string SourceText = readFileOrDie(Path);
  FrontendBundle B = runFrontend(SourceText);
  if (!B.ok()) {
    std::fprintf(stderr, "error: %s\n", B.Error.c_str());
    return 1;
  }

  std::printf("== analysis report ==\n");
  for (const std::string &Note : B.Analysis.Notes)
    std::printf("  %s\n", Note.c_str());

  ScheduleMap Schedules;
  Schedules[""] = Schedule::parse(SchedSpec);
  GeneratedCode Code =
      generateCpp(*B.Prog, B.Sema, B.Analysis, Schedules);
  std::printf("\n== codegen decisions ==\n");
  for (const std::string &Note : Code.Notes)
    std::printf("  %s\n", Note.c_str());
  std::printf("\n== generated C++ (%zu lines) ==\n",
              std::count(Code.Cpp.begin(), Code.Cpp.end(), '\n'));
  std::fputs(Code.Cpp.c_str(), stdout);

  if (!Run)
    return 0;

  // --run: execute on a built-in road network through the interpreter.
  std::printf("\n== interpreted run (40x40 road network) ==\n");
  RoadNetwork Net = roadGrid(40, 40, 99);
  BuildOptions Options;
  Options.Symmetrize = true;
  Graph G = GraphBuilder(Options).build(Net.NumNodes, Net.Edges,
                                        std::move(Net.Coords));
  InterpOptions IOpt;
  IOpt.Schedules = Schedules;
  IOpt.Args = {std::to_string(Source), std::to_string(Dest), "hvec"};
  std::vector<Priority> H(static_cast<size_t>(G.numNodes()));
  for (Count V = 0; V < G.numNodes(); ++V)
    H[V] = aStarHeuristic(G, static_cast<VertexId>(V), Dest);
  IOpt.VertexData["hvec"] = H;

  InterpResult R = interpret(*B.Prog, B.Sema, B.Analysis, G, IOpt);
  if (!R.Ok) {
    std::fprintf(stderr, "interpreter error: %s\n", R.Error.c_str());
    return 1;
  }
  std::printf("engine: %s; rounds=%lld\n",
              R.UsedEagerEngine ? "eager (transformed loop)"
                                : "facade (lazy)",
              (long long)R.Stats.Rounds);
  for (const auto &[Name, Vec] : R.Vectors) {
    long long Sum = 0, Finite = 0;
    for (Priority P : Vec) {
      if (P >= kInfiniteDistance)
        continue;
      Sum += P;
      ++Finite;
    }
    std::printf("vector %s: finite=%lld checksum=%lld\n", Name.c_str(),
                Finite, Sum);
  }
  return 0;
}
