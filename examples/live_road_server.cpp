//===- examples/live_road_server.cpp - Live-updating routing service ------===//
//
// Part of graphit-ordered, an independent C++ reproduction of "Optimizing
// Ordered Graph Algorithms with GraphIt" (CGO 2020). MIT License.
//
//===----------------------------------------------------------------------===//
//
// The live-graph serving demo: a road network that changes while queries
// are in flight.
//
//   * a snapshot store publishes refcounted graph versions; a writer thread
//     feeds it traffic incidents (closures triple a segment's weight,
//     reopenings push it back toward free-flow);
//   * a query engine in live mode serves point-to-point queries, each
//     pinning the latest version for its lifetime — publishes never block
//     queries, queries never block publishes;
//   * a dispatcher keeps a full SSSP tree from a depot current with
//     incremental repair (O(affected) per batch) instead of recomputing.
//
// The serving loop also demonstrates the overload controls: every query
// carries a deadline and an importance class, admission control sheds the
// least-important work when the queue overfills, and results come back
// through tickets + tryCollect — nothing in the client path can abort on
// a bad ticket, and every submitted query resolves with a typed status.
//
// Pass `--sharded` to serve the same demo from a ShardedSnapshotStore
// through the identical engine code (BasicQueryEngine is a template over
// the Store concept): writers take per-shard locks, compaction folds one
// shard at a time in the background, and the final report breaks the
// fold counters out per shard.
//
// Build: cmake --build build --target example_live_road_server
//
//===----------------------------------------------------------------------===//

#include "algorithms/IncrementalSSSP.h"
#include "algorithms/SSSP.h"
#include "graph/Builder.h"
#include "graph/Generators.h"
#include "service/QueryEngine.h"
#include "service/SnapshotStore.h"
#include "support/LatencyHistogram.h"
#include "support/Random.h"
#include "support/Timer.h"

#include <chrono>

#include <atomic>
#include <cmath>
#include <cstdio>
#include <cstring>
#include <optional>
#include <thread>
#include <type_traits>
#include <vector>

using namespace graphit;
using namespace graphit::service;

namespace {

constexpr Count kSide = 150;

/// Lowest weight the live A* coordinate heuristic tolerates on (U, V):
/// the road generator guarantees weight >= 100 x Euclidean length, and
/// every reopening must respect the same floor or the heuristic loses
/// admissibility (see algorithms/AStar.h). Templated so the sharded
/// composite view (ShardedDeltaView) serves the same helper.
template <typename GraphT>
Weight heuristicFloor(const GraphT &G, VertexId U, VertexId V) {
  const Coordinates &C = G.coordinates();
  double DX = C.X[U] - C.X[V];
  double DY = C.Y[U] - C.Y[V];
  return static_cast<Weight>(
      std::ceil(100.0 * std::sqrt(DX * DX + DY * DY)));
}

/// One round of traffic incidents against the current map version.
template <typename GraphT>
std::vector<EdgeUpdate> incidents(const GraphT &G, Count HowMany,
                                  SplitMix64 &Rng) {
  std::vector<EdgeUpdate> Batch;
  const Count N = G.numNodes();
  while (static_cast<Count>(Batch.size()) < HowMany) {
    VertexId U = static_cast<VertexId>(Rng.nextInt(0, N));
    Count Deg = G.outDegree(U);
    if (Deg == 0)
      continue;
    Count Pick = Rng.nextInt(0, Deg);
    Count I = 0;
    for (WNode E : G.outNeighbors(U)) {
      if (I++ != Pick)
        continue;
      bool Closure = Rng.nextInt(0, 2) == 0;
      // Weight changes keep the A* coordinate bound admissible: closures
      // only increase weights (always safe), reopenings are clamped to
      // this edge's 100 x Euclidean floor — a constant floor would let a
      // long diagonal drop below its own bound and silently corrupt the
      // demo's A* answers.
      Weight W = Closure
                     ? static_cast<Weight>(E.W * 3)
                     : std::max(heuristicFloor(G, U, E.V),
                                static_cast<Weight>(E.W / 3));
      Batch.push_back(EdgeUpdate{U, E.V, W, UpdateKind::Upsert});
      break;
    }
  }
  return Batch;
}

Count overlayEdgesOf(const DeltaGraph &G) { return G.overlayEdges(); }
Count overlayEdgesOf(const ShardedDeltaView &V) {
  Count Sum = 0;
  for (const std::shared_ptr<const DeltaGraph> &S : V.shards())
    Sum += S->overlayEdges();
  return Sum;
}

/// The whole demo, generic over the Store concept — the exact code path
/// the engine runs in production for either store.
template <typename StoreT>
int runServer(StoreT &Store) {
  Schedule S;
  S.configApplyPriorityUpdateDelta(1024); // local point-to-point Δ

  typename BasicQueryEngine<StoreT>::Options Opts;
  Opts.NumWorkers = 4;
  Opts.DefaultSchedule = S;
  // Overload policy: past 512 queued queries shed the least-important
  // pending work (typed QueryStatus::Shed, never a silent drop); past 128
  // impose deadlines on point queries so the queue drains gracefully.
  Opts.AdmissionHighWater = 512;
  Opts.AdmissionSoftWater = 128;
  BasicQueryEngine<StoreT> Engine(Store, Opts);

  // Writer: a steady stream of incident batches racing the queries.
  std::atomic<bool> Done{false};
  std::thread Writer([&] {
    SplitMix64 Rng(99);
    while (!Done.load())
      Engine.applyUpdates(incidents(*Store.current(), 32, Rng));
  });

  // Query mix: local trips, half PPSP, half A* on the live coordinates.
  std::vector<std::pair<VertexId, VertexId>> Pairs =
      localGridQueryPairs(kSide, kSide, kSide / 24, 256, 777);
  for (int Round = 0; Round < 4; ++Round) {
    // Ticketed submission: deadlines on every trip (generous — they only
    // fire if the box is badly oversubscribed), importance split so that
    // under shedding the "navigation reroute" class survives the
    // "speculative prefetch" class.
    Timer Clock;
    std::vector<uint64_t> Tickets;
    std::vector<std::chrono::steady_clock::time_point> Submitted;
    Tickets.reserve(Pairs.size());
    Submitted.reserve(Pairs.size());
    for (size_t I = 0; I < Pairs.size(); ++I) {
      Query Q;
      Q.Kind = (I & 1) ? QueryKind::AStar : QueryKind::PPSP;
      Q.Source = Pairs[I].first;
      Q.Target = Pairs[I].second;
      Q.DeadlineMicros = 200 * 1000; // 200 ms per trip
      Q.Importance = (I % 4 == 0) ? 0 : 1; // every 4th is speculative
      Submitted.push_back(std::chrono::steady_clock::now());
      Tickets.push_back(Engine.submit(Q));
    }
    // Per-trip end-to-end latency (submit -> collect) for the round,
    // summarized with the same log-scale histogram the service benchmark
    // gates on (support/LatencyHistogram.h).
    LatencyHistogram Lat;
    size_t Ok = 0, Expired = 0, Shed = 0, Reached = 0;
    for (size_t I = 0; I < Tickets.size(); ++I) {
      // Drain with tryCollect (unknown or double-collected tickets are a
      // typed nullopt, never an abort), falling back to the blocking
      // collect for tickets still in flight — every submitted query
      // resolves exactly once with a typed status.
      std::optional<QueryResult> Maybe = Engine.tryCollect(Tickets[I]);
      QueryResult R =
          Maybe.has_value() ? std::move(*Maybe) : Engine.collect(Tickets[I]);
      if (R.Status == QueryStatus::Ok)
        Lat.record(static_cast<uint64_t>(
            std::chrono::duration_cast<std::chrono::microseconds>(
                std::chrono::steady_clock::now() - Submitted[I])
                .count()));
      switch (R.Status) {
      case QueryStatus::Ok:
        ++Ok;
        if (R.Dist < kInfiniteDistance)
          ++Reached;
        break;
      case QueryStatus::DeadlineExceeded:
        ++Expired;
        break;
      case QueryStatus::Shed:
        ++Shed;
        break;
      case QueryStatus::Failed:
        break;
      }
    }
    double Sec = Clock.seconds();
    typename StoreT::Snapshot Snap = Store.current();
    std::printf("round %d: %zu queries in %.3fs (%.0f qps) | ok %zu, "
                "expired %zu, shed %zu | version %llu, overlay %lld edges, "
                "%llu compactions\n",
                Round, Tickets.size(), Sec, Tickets.size() / Sec, Ok,
                Expired, Shed, (unsigned long long)Store.version(),
                (long long)overlayEdgesOf(*Snap),
                (unsigned long long)Store.compactions());
    std::printf("  latency (us): p50 %llu, p95 %llu, p99 %llu, max %llu "
                "over %llu completed trips\n",
                (unsigned long long)Lat.percentile(50),
                (unsigned long long)Lat.percentile(95),
                (unsigned long long)Lat.percentile(99),
                (unsigned long long)Lat.max(),
                (unsigned long long)Lat.count());
    if (Reached < Ok * 9 / 10)
      std::printf("  (note: %zu/%zu completed trips reachable this round)\n",
                  Reached, Ok);
  }
  Done = true;
  Writer.join();

  // Dispatcher view: keep a depot's full SSSP tree current with
  // incremental repair while more incidents land.
  std::printf("-- dispatcher: incremental repair vs recompute --\n");
  DistanceState Dispatch(Store.current()->numNodes());
  deltaSteppingSSSP(*Store.current(), /*Depot=*/0, S, Dispatch);
  RepairScratch Scratch;
  SplitMix64 Rng(7);
  for (int B = 0; B < 3; ++B) {
    typename StoreT::ApplyResult A =
        Store.applyUpdates(incidents(*Store.current(), 16, Rng));
    Timer RepairClock;
    RepairStats R =
        repairAfterUpdates(*A.Snap, A.Applied, Dispatch, S, Scratch);
    double RepairSec = RepairClock.seconds();
    Timer FullClock;
    SSSPResult Full = deltaSteppingSSSP(*A.Snap, 0, S);
    double FullSec = FullClock.seconds();
    bool Identical = true;
    for (size_t V = 0; V < Full.Dist.size(); ++V)
      if (Dispatch.distances()[V] != Full.Dist[V])
        Identical = false;
    std::printf("batch %d: %zu transitions, %lld affected -> repair %.4fs "
                "vs recompute %.4fs (%.1fx), identical: %s\n",
                B, A.Applied.size(), (long long)R.AffectedVertices,
                RepairSec, FullSec, FullSec / RepairSec,
                Identical ? "yes" : "NO");
    if (!Identical)
      return 1;
  }
  Store.waitForCompaction();
  std::printf("final: version %llu, %llu compactions, overlay %lld edges\n",
              (unsigned long long)Store.version(),
              (unsigned long long)Store.compactions(),
              (long long)overlayEdgesOf(*Store.current()));
  if constexpr (std::is_same_v<StoreT, ShardedSnapshotStore>) {
    // Per-shard compaction report: every fold here held exactly one
    // shard's writer lock while the other shards kept publishing.
    std::printf("per-shard folds:");
    for (int Sh = 0; Sh < Store.numShards(); ++Sh)
      std::printf(" [%d] %llu%s", Sh,
                  (unsigned long long)Store.shardFolds(Sh),
                  Store.shardDegraded(Sh) ? " (degraded)" : "");
    std::printf(" | tombstones reclaimed %llu | degraded: %s\n",
                (unsigned long long)Store.reclaimedTombstones(),
                Store.degraded() ? "yes" : "no");
  }
  return 0;
}

} // namespace

int main(int argc, char **argv) {
  bool Sharded = false;
  for (int I = 1; I < argc; ++I) {
    if (std::strcmp(argv[I], "--sharded") == 0) {
      Sharded = true;
    } else {
      std::fprintf(stderr, "usage: %s [--sharded]\n", argv[0]);
      return 2;
    }
  }

  RoadNetwork Net = roadGrid(kSide, kSide, 4242);
  BuildOptions Options;
  Options.Symmetrize = true;
  Graph Base = GraphBuilder(Options).build(Net.NumNodes, Net.Edges,
                                           std::move(Net.Coords));
  std::printf("== live road server: %lldx%lld grid, %lld nodes, "
              "%lld directed edges (%s store) ==\n",
              (long long)kSide, (long long)kSide,
              (long long)Base.numNodes(), (long long)Base.numEdges(),
              Sharded ? "sharded" : "unsharded");

  if (Sharded) {
    ShardedSnapshotStore::Options StoreOpts;
    StoreOpts.NumShards = 8;
    StoreOpts.CompactionThreshold = 0.02; // compact early for the demo
    StoreOpts.MinOverlayEdges = 1 << 10;
    StoreOpts.BackgroundCompaction = true;
    ShardedSnapshotStore Store(std::move(Base), StoreOpts);
    return runServer(Store);
  }
  SnapshotStore::Options StoreOpts;
  StoreOpts.CompactionThreshold = 0.02; // compact early for the demo
  StoreOpts.MinOverlayEdges = 1 << 10;
  StoreOpts.BackgroundCompaction = true;
  SnapshotStore Store(std::move(Base), StoreOpts);
  return runServer(Store);
}
