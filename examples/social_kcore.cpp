//===- examples/social_kcore.cpp - Community cores in a social graph ------===//
//
// Part of graphit-ordered, an independent C++ reproduction of "Optimizing
// Ordered Graph Algorithms with GraphIt" (CGO 2020). MIT License.
//
//===----------------------------------------------------------------------===//
//
// k-core decomposition of a social-network-like graph: find how deeply
// each vertex is embedded in the community structure, compare the
// lazy-histogram schedule (the paper's winner for k-core, Table 7)
// against eager, and print the coreness distribution.
//
//   ./social_kcore [scale]
//
//===----------------------------------------------------------------------===//

#include "algorithms/KCore.h"
#include "graph/Builder.h"
#include "graph/Generators.h"

#include <algorithm>
#include <cstdio>
#include <cstdlib>
#include <vector>

using namespace graphit;

int main(int argc, char **argv) {
  int Scale = argc > 1 ? std::atoi(argv[1]) : 16;

  BuildOptions Options;
  Options.Symmetrize = true;
  Options.Weighted = false;
  Graph G = GraphBuilder(Options).build(Count{1} << Scale,
                                        rmatEdges(Scale, 16, 1234));
  std::printf("social graph: %lld vertices, %lld undirected edges\n",
              (long long)G.numNodes(), (long long)G.numEdges() / 2);

  // The schedule the paper recommends for k-core: lazy bucket updates
  // with the constant-sum histogram reduction (Fig. 10, Table 7).
  Schedule Lazy;
  Lazy.configApplyPriorityUpdate("lazy_constant_sum");
  KCoreResult R = kCoreDecomposition(G, Lazy);
  std::printf("lazy_constant_sum: %.4fs, %lld buckets, max core %lld\n",
              R.Stats.Seconds, (long long)R.Stats.Rounds,
              (long long)R.MaxCore);

  Schedule Eager;
  Eager.configApplyPriorityUpdate("eager_no_fusion");
  KCoreResult RE = kCoreDecomposition(G, Eager);
  std::printf("eager:             %.4fs (same answer: %s)\n",
              RE.Stats.Seconds,
              R.Coreness == RE.Coreness ? "yes" : "NO");

  // Coreness distribution: how many vertices sit at each depth.
  std::vector<Count> ByCore(static_cast<size_t>(R.MaxCore) + 1, 0);
  for (Priority C : R.Coreness)
    ++ByCore[static_cast<size_t>(C)];
  std::printf("\ncoreness distribution (nonzero tiers):\n");
  int Printed = 0;
  for (Priority K = R.MaxCore; K >= 0 && Printed < 12; --K) {
    if (ByCore[static_cast<size_t>(K)] == 0)
      continue;
    std::printf("  %4lld-core: %lld vertices\n", (long long)K,
                (long long)ByCore[static_cast<size_t>(K)]);
    ++Printed;
  }
  return R.Coreness == RE.Coreness ? 0 : 1;
}
