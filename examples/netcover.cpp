//===- examples/netcover.cpp - Monitoring-node selection ------------------===//
//
// Part of graphit-ordered, an independent C++ reproduction of "Optimizing
// Ordered Graph Algorithms with GraphIt" (CGO 2020). MIT License.
//
//===----------------------------------------------------------------------===//
//
// Approximate set cover as network monitoring: choose a small set of
// vertices whose closed neighborhoods cover the whole graph (a dominating
// set). Compares the parallel bucketed greedy against the exact serial
// greedy.
//
//   ./netcover [scale]
//
//===----------------------------------------------------------------------===//

#include "algorithms/SetCover.h"
#include "graph/Builder.h"
#include "graph/Generators.h"

#include <cstdio>
#include <cstdlib>

using namespace graphit;

int main(int argc, char **argv) {
  int Scale = argc > 1 ? std::atoi(argv[1]) : 16;

  BuildOptions Options;
  Options.Symmetrize = true;
  Options.Weighted = false;
  Graph G = GraphBuilder(Options).build(Count{1} << Scale,
                                        rmatEdges(Scale, 12, 77));
  std::printf("network: %lld nodes, %lld undirected links\n",
              (long long)G.numNodes(), (long long)G.numEdges() / 2);

  SetCoverResult Par = approxSetCover(G, Schedule());
  std::printf("parallel bucketed greedy: %zu monitors, %.4fs, "
              "%lld bucket rounds\n",
              Par.ChosenSets.size(), Par.Stats.Seconds,
              (long long)Par.Stats.Rounds);
  std::printf("covers everything: %s\n",
              isValidCover(G, Par.ChosenSets) ? "yes" : "NO");

  SetCoverResult Ser = setCoverSerial(G);
  std::printf("serial exact greedy:      %zu monitors, %.4fs\n",
              Ser.ChosenSets.size(), Ser.Stats.Seconds);
  std::printf("parallel/serial cover-size ratio: %.3f\n",
              Ser.ChosenSets.empty()
                  ? 1.0
                  : static_cast<double>(Par.ChosenSets.size()) /
                        static_cast<double>(Ser.ChosenSets.size()));
  return isValidCover(G, Par.ChosenSets) ? 0 : 1;
}
