//===- examples/road_server.cpp - Batched route-query serving -------------===//
//
// Part of graphit-ordered, an independent C++ reproduction of "Optimizing
// Ordered Graph Algorithms with GraphIt" (CGO 2020). MIT License.
//
//===----------------------------------------------------------------------===//
//
// The serving-side counterpart of examples/road_routing.cpp: instead of
// timing one query, stand up a QueryEngine over a road-network snapshot
// and push a batch of concurrent point-to-point queries through it —
// per-worker pooled state (O(touched) setup per query), an ALT landmark
// cache sharpening the A* bound, and per-query schedule selection.
//
//   ./road_server [grid_side] [batch]
//
//===----------------------------------------------------------------------===//

#include "algorithms/Dijkstra.h"
#include "graph/Builder.h"
#include "graph/Generators.h"
#include "service/QueryEngine.h"
#include "support/Random.h"
#include "support/Timer.h"

#include <cstdio>
#include <cstdlib>
#include <thread>

using namespace graphit;
using namespace graphit::service;

int main(int argc, char **argv) {
  Count Side = argc > 1 ? std::atoll(argv[1]) : 256;
  Count Batch = argc > 2 ? std::atoll(argv[2]) : 128;

  RoadNetwork Net = roadGrid(Side, Side, /*Seed=*/2020);
  BuildOptions Options;
  Options.Symmetrize = true;
  Graph G = GraphBuilder(Options).build(Net.NumNodes, Net.Edges,
                                        std::move(Net.Coords));
  std::printf("snapshot: %lld intersections, %lld road segments\n",
              (long long)G.numNodes(), (long long)G.numEdges() / 2);

  QueryEngine::Options Opts;
  Opts.DefaultSchedule.configApplyPriorityUpdateDelta(8192);
  Opts.NumLandmarks = 8;
  Opts.TrackParents = true;
  Opts.NumWorkers = std::max(1u, std::thread::hardware_concurrency());

  Timer Warmup;
  QueryEngine Engine(G, Opts);
  std::printf("engine up: %d workers, %d landmarks (built in %.3fs)\n",
              Engine.numWorkers(), Engine.landmarks()->numLandmarks(),
              Warmup.seconds());

  // A batch of local routing queries: A* with the landmark bound for most,
  // a few plain PPSP (e.g. clients without a heuristic-capable tier).
  std::vector<Query> Queries;
  const Count Window = std::max<Count>(Side / 8, 8);
  std::vector<std::pair<VertexId, VertexId>> Pairs =
      localGridQueryPairs(Side, Side, Window, Batch, 99);
  for (Count I = 0; I < Batch; ++I) {
    Query Q;
    Q.Kind = I % 4 == 3 ? QueryKind::PPSP : QueryKind::AStar;
    Q.Source = Pairs[static_cast<size_t>(I)].first;
    Q.Target = Pairs[static_cast<size_t>(I)].second;
    Q.CollectPath = I == 0;
    Queries.push_back(Q);
  }

  Timer Clock;
  std::vector<QueryResult> Results = Engine.runBatch(Queries);
  double Seconds = Clock.seconds();

  // Spot-check a handful against the serial oracle.
  int Bad = 0;
  for (Count I = 0; I < Batch; I += std::max<Count>(Batch / 8, 1)) {
    Priority Exact =
        dijkstraPPSP(G, Queries[I].Source, Queries[I].Target);
    if (Results[I].Dist != Exact)
      ++Bad;
  }

  int64_t TotalTouched = 0;
  for (const QueryResult &R : Results)
    TotalTouched += R.Touched;
  OrderedStats Agg = Engine.aggregateStats();

  std::printf("\nbatch of %lld queries: %.4fs total, %.0f queries/s\n",
              (long long)Batch, Seconds, Batch / Seconds);
  std::printf("touched %lld vertices total (%.1f%% of naive %lld x |V|)\n",
              (long long)TotalTouched,
              100.0 * TotalTouched / (double)(Batch * G.numNodes()),
              (long long)Batch);
  std::printf("aggregate engine work: %lld rounds, %lld vertices\n",
              (long long)Agg.totalRounds(),
              (long long)Agg.VerticesProcessed);
  if (!Results[0].Path.empty())
    std::printf("sample route %u -> %u: %zu hops, length %lld\n",
                Queries[0].Source, Queries[0].Target,
                Results[0].Path.size() - 1, (long long)Results[0].Dist);
  std::printf("oracle spot-check: %s\n", Bad == 0 ? "all match" : "MISMATCH");
  return Bad == 0 ? 0 : 1;
}
