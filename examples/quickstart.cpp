//===- examples/quickstart.cpp - First steps with the library -------------===//
//
// Part of graphit-ordered, an independent C++ reproduction of "Optimizing
// Ordered Graph Algorithms with GraphIt" (CGO 2020). MIT License.
//
//===----------------------------------------------------------------------===//
//
// Quickstart: build a graph, pick a schedule, run Δ-stepping SSSP — both
// through the high-level algorithm API and through the paper's
// priority-queue programming model (Fig. 3), and show that bucket fusion
// changes the round count but not the answer.
//
//   ./quickstart [scale]
//
//===----------------------------------------------------------------------===//

#include "algorithms/SSSP.h"
#include "core/PriorityQueue.h"
#include "graph/Builder.h"
#include "graph/Generators.h"

#include <cstdio>
#include <cstdlib>

using namespace graphit;

int main(int argc, char **argv) {
  int Scale = argc > 1 ? std::atoi(argv[1]) : 14;

  // 1. Build a weighted social-network-like graph.
  std::vector<Edge> Edges = rmatEdges(Scale, 16, /*Seed=*/42);
  assignRandomWeights(Edges, 1, 1000, /*Seed=*/7);
  Graph G = GraphBuilder().build(Count{1} << Scale, Edges);
  std::printf("graph: %lld vertices, %lld edges\n",
              (long long)G.numNodes(), (long long)G.numEdges());

  // 2. Pick a schedule (the paper's scheduling language, Table 2).
  Schedule Sched;
  Sched.configApplyPriorityUpdate("eager_with_fusion")
      .configApplyPriorityUpdateDelta(8);

  // 3. Run SSSP through the algorithm API.
  VertexId Source = 0;
  SSSPResult R = deltaSteppingSSSP(G, Source, Sched);
  std::printf("eager_with_fusion: %.4fs, %lld rounds (%lld fused)\n",
              R.Stats.Seconds, (long long)R.Stats.Rounds,
              (long long)R.Stats.FusedRounds);

  // 4. Same computation through the Fig. 3 programming model: an abstract
  //    priority queue with dequeueReadySet / updatePriorityMin.
  std::vector<Priority> Dist(G.numNodes(), kInfiniteDistance);
  Dist[Source] = 0;
  PriorityQueue PQ(/*AllowCoarsening=*/true, PriorityOrder::LowerFirst,
                   Dist, Sched, Source);
  while (!PQ.finished()) {
    VertexSubset Bucket = PQ.dequeueReadySet();
    applyUpdatePriority(G, Bucket,
                        [&](VertexId Src, VertexId Dst, Weight W) {
                          PQ.updatePriorityMin(Dst, Dist[Src] + W);
                        });
  }
  std::printf("priority-queue model: %lld rounds\n",
              (long long)PQ.rounds());

  // 5. The two must agree everywhere.
  Count Mismatches = 0, Reached = 0;
  for (Count V = 0; V < G.numNodes(); ++V) {
    if (R.Dist[V] != Dist[V])
      ++Mismatches;
    if (R.Dist[V] != kInfiniteDistance)
      ++Reached;
  }
  std::printf("reached %lld vertices, %lld mismatches\n",
              (long long)Reached, (long long)Mismatches);

  // 6. Fusion vs no fusion: same distances, different round counts.
  Schedule NoFusion = Sched;
  NoFusion.configApplyPriorityUpdate("eager_no_fusion");
  SSSPResult R2 = deltaSteppingSSSP(G, Source, NoFusion);
  std::printf("eager_no_fusion:   %.4fs, %lld rounds\n", R2.Stats.Seconds,
              (long long)R2.Stats.Rounds);
  std::printf("answers match: %s\n", R.Dist == R2.Dist ? "yes" : "NO");
  return Mismatches == 0 ? 0 : 1;
}
