//===- bench/autotuner_bench.cpp - §6.2 autotuning -------------------------===//
//
// Part of graphit-ordered, an independent C++ reproduction of "Optimizing
// Ordered Graph Algorithms with GraphIt" (CGO 2020). MIT License.
//
//===----------------------------------------------------------------------===//
//
// §6.2 "Autotuning": the tuner searches the schedule space and should land
// within a few percent of the hand-tuned schedule after a few dozen
// trials (the paper: within 5% after 30-40 schedules out of ~10^6).
//
//===----------------------------------------------------------------------===//

#include "BenchUtil.h"

#include "algorithms/SSSP.h"
#include "autotuner/Autotuner.h"

using namespace graphit;
using namespace graphit::bench;

int main() {
  banner("Autotuner (§6.2)",
         "finds a schedule within ~5% of hand-tuned in 30-40 trials");

  for (DatasetId Id : {DatasetId::LJ, DatasetId::RD}) {
    // Tune on a small sample of the graph family (tune-small,
    // deploy-big): single schedule evaluations must stay small so a
    // 36-trial search finishes in seconds — even for the pathological
    // schedules random search will stumble into (e.g. delta=1 on a road
    // network). The paper instead spent up to 5000s on the full graphs.
    double Sample = (isRoadNetwork(Id) ? 0.003 : 0.05) *
                    datasetScaleFromEnv();
    Graph G = makeDataset(Id, DatasetVariant::Directed, Sample);
    std::vector<VertexId> Sources = pickSources(G, 2, 5);

    auto Eval = [&](const Schedule &S) {
      double Total = 0;
      for (VertexId Src : Sources)
        Total += deltaSteppingSSSP(G, Src, S).Stats.Seconds;
      return Total / Sources.size();
    };

    // Hand-tuning reference on the SAME sample: what a person would do —
    // fix the strategy to eager_with_fusion and sweep delta exhaustively.
    Eval(Schedule()); // warmup (page-in the graph)
    Schedule Hand;
    double HandTime = 1e30;
    for (int Exp = 0; Exp <= 17; ++Exp) {
      Schedule S;
      S.configApplyPriorityUpdate("eager_with_fusion")
          .configApplyPriorityUpdateDelta(int64_t{1} << Exp);
      double T = Eval(S);
      if (T < HandTime) {
        HandTime = T;
        Hand = S;
      }
    }

    TuningOptions Options;
    Options.MaxTrials = 36;
    Options.TimeBudgetSeconds = 60;
    TuningResult R = autotune(TuningSpace::distanceSpace(), Eval, Options);

    std::printf("\n-- SSSP on %s (sample: %lld vertices, %lld edges) "
                "--\n",
                datasetName(Id), (long long)G.numNodes(),
                (long long)G.numEdges());
    std::printf("space size:        %lld schedules\n",
                (long long)TuningSpace::distanceSpace().size());
    std::printf("schedules tried:   %d (%.1fs)\n", R.Evaluated,
                R.ElapsedSeconds);
    std::printf("hand delta-sweep:  %s -> %.4fs\n",
                Hand.toString().c_str(), HandTime);
    std::printf("autotuned:         %s -> %.4fs\n",
                R.Best.toString().c_str(), R.BestSeconds);
    std::printf("autotuned/hand:    %.2fx (paper: within ~1.05x)\n",
                R.BestSeconds / HandTime);
  }
  return 0;
}
