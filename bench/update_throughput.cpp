//===- bench/update_throughput.cpp - Incremental repair vs recompute ------===//
//
// Part of graphit-ordered, an independent C++ reproduction of "Optimizing
// Ordered Graph Algorithms with GraphIt" (CGO 2020). MIT License.
//
//===----------------------------------------------------------------------===//
//
// Measures the live-graph update path: batches of edge updates (closures,
// weight changes, new shortcuts) are applied through the SnapshotStore,
// and a dispatcher-style full SSSP state is brought up to date two ways:
//
//   recompute — pooled beginQuery + a fresh Δ-stepping run over the new
//               snapshot (the strongest non-incremental baseline: it
//               already skips the O(V) infinity fill);
//   repair    — algorithms/IncrementalSSSP.h: invalidate the affected
//               set, re-relax its boundary, settle the seeds through the
//               ordered engine. O(affected), not O(V + E).
//
// Both must produce bit-identical distance arrays (verified every batch;
// any divergence exits non-zero). One JSON line per batch size:
//
//   {"bench": "update_throughput", "updates": K, "edge_frac": ...,
//    "repair_s": ..., "recompute_s": ..., "speedup": ...,
//    "affected": ..., "check": ...}
//
// `updates` is the number of undirected edge updates per batch (each is
// two directed transitions); `edge_frac` is their share of all directed
// edges — the paper-relevant regime is the small end (≤ 0.1%), where
// repair should win by an order of magnitude or more.
//
// Two scale-out variants ride along:
//
//   update_throughput_hot — the QueryEngine's hot-source cache: per
//     version, applyUpdates (which repairs the cached depot state in
//     O(affected)) + a depot SSSP query, against the same engine with the
//     cache off (pooled recompute per query). Metric: "speedup" of the
//     end-to-end apply+query round; checksums must match exactly.
//
//   update_throughput_sharded — T writer threads on distinct vertex-range
//     shards pushing batches through a ShardedSnapshotStore vs the same
//     batches through the single-writer-mutex SnapshotStore. Metric:
//     "speedup" of wall-clock apply time; final adjacency checksums must
//     match exactly.
//
//   sharded_compacting — the same multi-writer streams with compaction
//     thresholds low enough that folds trip throughout the run:
//     incremental per-shard folds (one shard writer lock each, O(shard))
//     against Options::LegacyGlobalRebuild (the old all-shards global
//     rebuild). Two gated lines, "mode": "p99" (per-batch apply latency)
//     and "mode": "qps" (batch throughput), each with "speedup" =
//     global / incremental — the binary exits non-zero unless the
//     incremental path wins both AND the final distance arrays are
//     bit-identical across the two modes.
//
// Knobs: GRAPHIT_SCALE (graph side multiplier), GRAPHIT_BENCH_TRIALS.
//
//===----------------------------------------------------------------------===//

#include "BenchUtil.h"

#include "algorithms/IncrementalSSSP.h"
#include "algorithms/SSSP.h"
#include "graph/Builder.h"
#include "graph/Generators.h"
#include "service/QueryEngine.h"
#include "service/SnapshotStore.h"
#include "support/Random.h"

#include <algorithm>
#include <cstdio>
#include <thread>
#include <vector>

using namespace graphit;
using namespace graphit::bench;
using namespace graphit::service;

namespace {

/// A road-incident update mix against the current snapshot: mostly weight
/// changes (closures slow a segment, reopenings speed it back up), some
/// deletions, some new diagonal shortcuts. \p HowMany undirected updates.
std::vector<EdgeUpdate> incidentBatch(const DeltaGraph &G, Count Side,
                                      Count HowMany, SplitMix64 &Rng) {
  std::vector<EdgeUpdate> Batch;
  const Count N = G.numNodes();
  while (static_cast<Count>(Batch.size()) < HowMany) {
    int Action = static_cast<int>(Rng.nextInt(0, 10));
    if (Action == 9) {
      // New diagonal shortcut near a random intersection.
      Count R = Rng.nextInt(0, Side - 1), C = Rng.nextInt(0, Side - 1);
      VertexId U = static_cast<VertexId>(R * Side + C);
      VertexId V = static_cast<VertexId>((R + 1) * Side + C + 1);
      if (static_cast<Count>(V) >= N || U == V)
        continue;
      Batch.push_back(EdgeUpdate{
          U, V, static_cast<Weight>(Rng.nextInt(200, 400)),
          UpdateKind::Upsert});
      continue;
    }
    VertexId U = static_cast<VertexId>(Rng.nextInt(0, N));
    Count Deg = G.outDegree(U);
    if (Deg == 0)
      continue;
    Count Pick = Rng.nextInt(0, Deg);
    Count I = 0;
    for (WNode E : G.outNeighbors(U)) {
      if (I++ != Pick)
        continue;
      if (Action == 8)
        Batch.push_back(EdgeUpdate{U, E.V, 0, UpdateKind::Delete});
      else if (Action < 5) // closure: segment slows down
        Batch.push_back(EdgeUpdate{U, E.V,
                                   static_cast<Weight>(E.W * 3),
                                   UpdateKind::Upsert});
      else // reopening: back toward free-flow
        Batch.push_back(EdgeUpdate{
            U, E.V, static_cast<Weight>(std::max<Weight>(100, E.W / 3)),
            UpdateKind::Upsert});
      break;
    }
  }
  return Batch;
}

struct Measurement {
  double RepairSeconds = 0;
  double RecomputeSeconds = 0;
  int64_t Affected = 0;
  int64_t Check = 0;
  bool Mismatch = false;
};

/// Runs `Batches` update batches of `UpdatesPerBatch` against a fresh
/// store, timing repair and recompute per batch. Deterministic: the same
/// seeds produce the same versions on every trial.
Measurement runExperiment(const Graph &Base, Count Side,
                          Count UpdatesPerBatch, int Batches,
                          const Schedule &S, VertexId Depot) {
  // High threshold: compaction cost is a separate (amortized) story and
  // would pollute per-batch repair timings.
  SnapshotStore::Options Opts;
  Opts.CompactionThreshold = 1e9;
  SnapshotStore Store(Base, Opts);

  DistanceState Repaired(Base.numNodes());
  DistanceState Recomputed(Base.numNodes());
  deltaSteppingSSSP(*Store.current(), Depot, S, Repaired);
  RepairScratch Scratch;
  SplitMix64 Rng(0xC0FFEE ^ static_cast<uint64_t>(UpdatesPerBatch));

  Measurement M;
  for (int B = 0; B < Batches; ++B) {
    std::vector<EdgeUpdate> Batch =
        incidentBatch(*Store.current(), Side, UpdatesPerBatch, Rng);
    SnapshotStore::ApplyResult A = Store.applyUpdates(Batch);

    Timer RepairClock;
    RepairStats R =
        repairAfterUpdates(*A.Snap, A.Applied, Repaired, S, Scratch);
    M.RepairSeconds += RepairClock.seconds();
    M.Affected += R.AffectedVertices;

    Timer RecomputeClock;
    deltaSteppingSSSP(*A.Snap, Depot, S, Recomputed);
    M.RecomputeSeconds += RecomputeClock.seconds();

    const std::vector<Priority> &D1 = Repaired.distances();
    const std::vector<Priority> &D2 = Recomputed.distances();
    for (size_t V = 0; V < D1.size(); ++V)
      if (D1[V] != D2[V]) {
        M.Mismatch = true;
        return M;
      }
  }
  M.Check = resultChecksum(Repaired.distances());
  return M;
}

/// Hot-source serving experiment: `Batches` rounds of applyUpdates + one
/// depot SSSP query through a live QueryEngine, with the hot cache on or
/// off. Deterministic per (UpdatesPerBatch, Hot-independent) seed so both
/// flavors see the same version history. Returns total seconds; *Check
/// receives the final depot distance checksum.
double runHotExperiment(const Graph &Base, Count Side,
                        Count UpdatesPerBatch, int Batches,
                        const Schedule &S, VertexId Depot, bool Hot,
                        int64_t *Check) {
  SnapshotStore::Options SO;
  SO.CompactionThreshold = 1e9;
  SnapshotStore Store(Base, SO);
  QueryEngine::Options QO;
  QO.NumWorkers = 1;
  QO.DefaultSchedule = S;
  QO.HotSourceCapacity = Hot ? 2 : 0;
  QueryEngine Engine(Store, QO);

  Query Q;
  Q.Kind = QueryKind::SSSP;
  Q.Source = Depot;
  Engine.runBatch({Q}); // warm: installs the hot state / pooled arrays

  SplitMix64 Rng(0xC0FFEE ^ static_cast<uint64_t>(UpdatesPerBatch));
  double Total = 0;
  for (int B = 0; B < Batches; ++B) {
    std::vector<EdgeUpdate> Batch =
        incidentBatch(*Store.current(), Side, UpdatesPerBatch, Rng);
    Timer Clock;
    Engine.applyUpdates(Batch); // hot flavor repairs the depot state here
    Engine.runBatch({Q});
    Total += Clock.seconds();
  }

  // Checksum outside the timed loop: same batches => same final version,
  // so hot and cold flavors must agree exactly.
  Query C = Q;
  C.CollectReached = true;
  QueryResult R = Engine.runBatch({C})[0];
  int64_t Sum = 0;
  for (const std::pair<VertexId, Priority> &P : R.Reached)
    Sum += P.second;
  *Check = Sum;
  return Total;
}

/// Sharded write-path experiment: \p Writers threads each apply their own
/// pre-generated shard-local batch stream; returns wall seconds. The same
/// per-writer streams go through both store flavors.
template <typename StoreT>
double runApplyThreads(StoreT &Store,
                       const std::vector<std::vector<std::vector<EdgeUpdate>>>
                           &PerWriter) {
  Timer Clock;
  std::vector<std::thread> Threads;
  Threads.reserve(PerWriter.size());
  for (const std::vector<std::vector<EdgeUpdate>> &Stream : PerWriter)
    Threads.emplace_back([&Store, &Stream] {
      for (const std::vector<EdgeUpdate> &B : Stream)
        Store.applyUpdates(B);
    });
  for (std::thread &T : Threads)
    T.join();
  return Clock.seconds();
}

/// Per-writer shard-local streams (writer w owns shard w's vertex range —
/// the power-of-two span over-covers the universe, so only the low shards
/// are guaranteed non-empty), generated once and replayed into every
/// store flavor — disjoint ranges make the final adjacency
/// interleaving-independent. Returns empty on an empty writer range.
std::vector<std::vector<std::vector<EdgeUpdate>>>
makeWriterStreams(const Graph &Base, Count Span, int Writers,
                  Count UpdatesPerBatch, int BatchesPerWriter,
                  uint64_t Seed) {
  std::vector<std::vector<std::vector<EdgeUpdate>>> PerWriter(
      static_cast<size_t>(Writers));
  for (int W = 0; W < Writers; ++W) {
    SplitMix64 Rng(Seed ^ static_cast<uint64_t>(W));
    Count Lo = static_cast<Count>(W) * Span;
    Count Hi = std::min<Count>(Base.numNodes(), Lo + Span);
    if (Hi - Lo < 2) {
      std::fprintf(stderr, "!! empty writer range %d [%lld, %lld)\n", W,
                   (long long)Lo, (long long)Hi);
      return {};
    }
    for (int B = 0; B < BatchesPerWriter; ++B) {
      std::vector<EdgeUpdate> Batch;
      while (static_cast<Count>(Batch.size()) < UpdatesPerBatch) {
        VertexId A = static_cast<VertexId>(Rng.nextInt(Lo, Hi));
        VertexId D = static_cast<VertexId>(Rng.nextInt(Lo, Hi));
        if (A == D)
          continue;
        Batch.push_back(EdgeUpdate{
            A, D, static_cast<Weight>(Rng.nextInt(100, 400)),
            Rng.nextInt(0, 6) == 0 ? UpdateKind::Delete
                                   : UpdateKind::Upsert});
      }
      PerWriter[static_cast<size_t>(W)].push_back(std::move(Batch));
    }
  }
  return PerWriter;
}

struct LatencyRun {
  double WallSeconds = 0;
  double P99Micros = 0;
};

/// Like runApplyThreads, but times every applyUpdates call so the fold
/// cost lands in the per-batch latency distribution — the number the
/// incremental-vs-global comparison is actually about.
template <typename StoreT>
LatencyRun runCompactingWriters(
    StoreT &Store,
    const std::vector<std::vector<std::vector<EdgeUpdate>>> &PerWriter) {
  std::vector<std::vector<double>> Lat(PerWriter.size());
  Timer Clock;
  std::vector<std::thread> Threads;
  Threads.reserve(PerWriter.size());
  for (size_t W = 0; W < PerWriter.size(); ++W)
    Threads.emplace_back([&Store, &Stream = PerWriter[W], &Out = Lat[W]] {
      Out.reserve(Stream.size());
      for (const std::vector<EdgeUpdate> &B : Stream) {
        Timer T;
        Store.applyUpdates(B);
        Out.push_back(T.seconds() * 1e6);
      }
    });
  for (std::thread &T : Threads)
    T.join();
  LatencyRun R;
  R.WallSeconds = Clock.seconds();
  std::vector<double> All;
  for (const std::vector<double> &L : Lat)
    All.insert(All.end(), L.begin(), L.end());
  std::sort(All.begin(), All.end());
  R.P99Micros = All[All.size() * 99 / 100];
  return R;
}

} // namespace

int main() {
  Count Side = static_cast<Count>(300 * datasetScaleFromEnv());
  Side = std::max<Count>(Side, 60);
  RoadNetwork Net = roadGrid(Side, Side, 4242);
  BuildOptions Options;
  Options.Symmetrize = true;
  Graph Base = GraphBuilder(Options).build(Net.NumNodes, Net.Edges,
                                           std::move(Net.Coords));

  Schedule S;
  S.configApplyPriorityUpdateDelta(8192); // §6.2 road Δ (full SSSP runs)
  const VertexId Depot = 0;
  const int Batches = 8;

  std::fprintf(stderr, "# road %lldx%lld: %lld nodes, %lld directed edges\n",
               (long long)Side, (long long)Side,
               (long long)Base.numNodes(), (long long)Base.numEdges());

  for (Count Updates : {Count{8}, Count{64}, Count{512}}) {
    Measurement Best;
    double BestRepair = 1e30;
    for (int T = 0; T < numTrials(); ++T) {
      Measurement M =
          runExperiment(Base, Side, Updates, Batches, S, Depot);
      if (M.Mismatch) {
        std::fprintf(stderr,
                     "!! repair/recompute mismatch at %lld updates\n",
                     (long long)Updates);
        return 1;
      }
      if (M.RepairSeconds < BestRepair) {
        BestRepair = M.RepairSeconds;
        Best = M;
      }
    }
    double Frac = static_cast<double>(2 * Updates) /
                  static_cast<double>(Base.numEdges());
    std::printf("{\"bench\": \"update_throughput\", \"updates\": %lld, "
                "\"edge_frac\": %.6f, \"repair_s\": %.6f, "
                "\"recompute_s\": %.6f, \"speedup\": %.2f, "
                "\"affected\": %lld, \"check\": %lld}\n",
                (long long)Updates, Frac, Best.RepairSeconds,
                Best.RecomputeSeconds,
                Best.RecomputeSeconds / Best.RepairSeconds,
                (long long)(Best.Affected / Batches),
                (long long)Best.Check);
    std::fflush(stdout);
  }

  // --- Hot-source serving: repaired repeat-source queries vs pooled
  // recompute through the live QueryEngine (acceptance: repair wins at
  // the low-churn end).
  for (Count Updates : {Count{8}, Count{64}}) {
    double BestHot = 1e30, BestCold = 1e30;
    int64_t Check = 0;
    for (int T = 0; T < numTrials(); ++T) {
      int64_t HotCheck = 0, ColdCheck = 0;
      double Hot = runHotExperiment(Base, Side, Updates, Batches, S, Depot,
                                    /*Hot=*/true, &HotCheck);
      double Cold = runHotExperiment(Base, Side, Updates, Batches, S, Depot,
                                     /*Hot=*/false, &ColdCheck);
      if (HotCheck != ColdCheck) {
        std::fprintf(stderr,
                     "!! hot/recompute checksum mismatch at %lld updates: "
                     "%lld vs %lld\n",
                     (long long)Updates, (long long)HotCheck,
                     (long long)ColdCheck);
        return 1;
      }
      BestHot = std::min(BestHot, Hot);
      BestCold = std::min(BestCold, Cold);
      Check = HotCheck;
    }
    double Frac = static_cast<double>(2 * Updates) /
                  static_cast<double>(Base.numEdges());
    std::printf("{\"bench\": \"update_throughput_hot\", \"updates\": %lld, "
                "\"edge_frac\": %.6f, \"hot_s\": %.6f, "
                "\"recompute_s\": %.6f, \"speedup\": %.2f, "
                "\"check\": %lld, \"tolerance\": 0.35}\n",
                (long long)Updates, Frac, BestHot, BestCold,
                BestCold / BestHot, (long long)Check);
    std::fflush(stdout);
  }

  // --- Sharded write path: T writers on distinct vertex-range shards vs
  // the single-writer-mutex store, same per-writer batch streams.
  {
    const int Writers = 4;
    const Count UpdatesPerBatch = 64;
    const int BatchesPerWriter = 48;
    ShardedSnapshotStore::Options ShOpts;
    ShOpts.NumShards = 8;
    ShOpts.CompactionThreshold = 1e9; // apply cost only, like the repair runs
    SnapshotStore::Options PlOpts;
    PlOpts.CompactionThreshold = 1e9;

    Count Span;
    {
      ShardedSnapshotStore Probe(Base, ShOpts);
      Span = Probe.shardSpan();
    }
    std::vector<std::vector<std::vector<EdgeUpdate>>> PerWriter =
        makeWriterStreams(Base, Span, Writers, UpdatesPerBatch,
                          BatchesPerWriter, 0x5A4D);
    if (PerWriter.empty())
      return 1;

    double BestSharded = 1e30, BestPlain = 1e30;
    for (int T = 0; T < numTrials(); ++T) {
      ShardedSnapshotStore Sharded(Base, ShOpts);
      SnapshotStore Plain(Base, PlOpts);
      BestSharded = std::min(BestSharded, runApplyThreads(Sharded, PerWriter));
      BestPlain = std::min(BestPlain, runApplyThreads(Plain, PerWriter));
      int64_t CS = resultChecksum(
          deltaSteppingSSSP(*Sharded.current(), Depot, S).Dist);
      int64_t CP = resultChecksum(
          deltaSteppingSSSP(*Plain.current(), Depot, S).Dist);
      if (CS != CP) {
        std::fprintf(stderr,
                     "!! sharded/unsharded adjacency checksum mismatch: "
                     "%lld vs %lld\n",
                     (long long)CS, (long long)CP);
        return 1;
      }
    }
    std::printf("{\"bench\": \"update_throughput_sharded\", "
                "\"updates\": %lld, \"threads\": %d, \"sharded_s\": %.6f, "
                "\"unsharded_s\": %.6f, \"speedup\": %.2f, "
                "\"tolerance\": 0.50}\n",
                (long long)UpdatesPerBatch, Writers, BestSharded, BestPlain,
                BestPlain / BestSharded);
    std::fflush(stdout);
  }

  // --- Per-shard incremental compaction vs the legacy global rebuild:
  // the same multi-writer streams with thresholds low enough that folds
  // trip throughout. The incremental path folds one shard under that
  // shard's writer lock while the other writers keep publishing; the
  // legacy path rebuilds the whole store per trigger. Gated on both the
  // per-batch p99 and the batch throughput — and the bench itself fails
  // unless incremental wins both with bit-identical final distances.
  {
    const int Writers = 4;
    const Count UpdatesPerBatch = 64;
    const int BatchesPerWriter = 48;
    ShardedSnapshotStore::Options IncOpts;
    IncOpts.NumShards = 8;
    IncOpts.CompactionThreshold = 0.001;
    IncOpts.MinOverlayEdges = 256;
    ShardedSnapshotStore::Options GloOpts = IncOpts;
    GloOpts.LegacyGlobalRebuild = true;

    Count Span;
    {
      ShardedSnapshotStore Probe(Base, IncOpts);
      Span = Probe.shardSpan();
    }
    std::vector<std::vector<std::vector<EdgeUpdate>>> PerWriter =
        makeWriterStreams(Base, Span, Writers, UpdatesPerBatch,
                          BatchesPerWriter, 0x5A4E);
    if (PerWriter.empty())
      return 1;

    const double TotalBatches =
        static_cast<double>(Writers) * BatchesPerWriter;
    double IncP99 = 1e30, GloP99 = 1e30, IncWall = 1e30, GloWall = 1e30;
    uint64_t Folds = 0, Reclaimed = 0, GlobalRebuilds = 0;
    for (int T = 0; T < numTrials(); ++T) {
      ShardedSnapshotStore Inc(Base, IncOpts);
      LatencyRun RI = runCompactingWriters(Inc, PerWriter);
      ShardedSnapshotStore Glo(Base, GloOpts);
      LatencyRun RG = runCompactingWriters(Glo, PerWriter);

      std::vector<Priority> DI =
          deltaSteppingSSSP(*Inc.current(), Depot, S).Dist;
      std::vector<Priority> DG =
          deltaSteppingSSSP(*Glo.current(), Depot, S).Dist;
      if (DI != DG) {
        std::fprintf(stderr, "!! incremental/global distance mismatch "
                             "after compacting run\n");
        return 1;
      }
      IncP99 = std::min(IncP99, RI.P99Micros);
      GloP99 = std::min(GloP99, RG.P99Micros);
      IncWall = std::min(IncWall, RI.WallSeconds);
      GloWall = std::min(GloWall, RG.WallSeconds);
      Folds = 0;
      for (int Sh = 0; Sh < Inc.numShards(); ++Sh)
        Folds += Inc.shardFolds(Sh);
      Reclaimed = Inc.reclaimedTombstones();
      GlobalRebuilds = Glo.compactions();
    }
    if (Folds == 0) {
      std::fprintf(stderr, "!! compacting run tripped no per-shard fold — "
                           "thresholds are miscalibrated\n");
      return 1;
    }
    const double IncQps = TotalBatches / IncWall;
    const double GloQps = TotalBatches / GloWall;
    if (IncP99 > GloP99 || IncQps < GloQps) {
      std::fprintf(stderr,
                   "!! incremental per-shard folds must beat the global "
                   "rebuild: p99 %.0fus vs %.0fus, qps %.0f vs %.0f\n",
                   IncP99, GloP99, IncQps, GloQps);
      return 1;
    }
    std::printf("{\"bench\": \"sharded_compacting\", \"mode\": \"p99\", "
                "\"updates\": %lld, \"threads\": %d, "
                "\"incremental_p99_us\": %.1f, \"global_p99_us\": %.1f, "
                "\"speedup\": %.2f, \"folds\": %llu, "
                "\"reclaimed_tombstones\": %llu, \"tolerance\": 0.50}\n",
                (long long)UpdatesPerBatch, Writers, IncP99, GloP99,
                GloP99 / IncP99, (unsigned long long)Folds,
                (unsigned long long)Reclaimed);
    std::printf("{\"bench\": \"sharded_compacting\", \"mode\": \"qps\", "
                "\"updates\": %lld, \"threads\": %d, "
                "\"incremental_qps\": %.1f, \"global_qps\": %.1f, "
                "\"speedup\": %.2f, \"global_rebuilds\": %llu, "
                "\"tolerance\": 0.50}\n",
                (long long)UpdatesPerBatch, Writers, IncQps, GloQps,
                IncQps / GloQps, (unsigned long long)GlobalRebuilds);
    std::fflush(stdout);
  }
  return 0;
}
