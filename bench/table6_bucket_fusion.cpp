//===- bench/table6_bucket_fusion.cpp - Table 6 ---------------------------===//
//
// Part of graphit-ordered, an independent C++ reproduction of "Optimizing
// Ordered Graph Algorithms with GraphIt" (CGO 2020). MIT License.
//
//===----------------------------------------------------------------------===//
//
// Table 6: running time and number of rounds with and without the bucket
// fusion optimization, SSSP with Δ-stepping on TW, FT, WB, RD.
//
//===----------------------------------------------------------------------===//

#include "BenchUtil.h"

#include "algorithms/SSSP.h"

using namespace graphit;
using namespace graphit::bench;

int main() {
  banner("Table 6: bucket fusion round/time reduction (SSSP)",
         "fusion cuts rounds >30x and time >3x on the road network; "
         "modest wins on social/web graphs");

  std::vector<DatasetId> Sets = {DatasetId::TW, DatasetId::FT,
                                 DatasetId::WB, DatasetId::RD};
  std::printf("\n%-8s%16s%14s%18s%14s\n", "graph", "with fusion",
              "[rounds]", "without fusion", "[rounds]");

  for (DatasetId Id : Sets) {
    Graph G = makeDataset(Id, DatasetVariant::Directed);
    Schedule Fused;
    Fused.configApplyPriorityUpdateDelta(isRoadNetwork(Id) ? 8192 : 2);
    Schedule Plain = Fused;
    Plain.configApplyPriorityUpdate("eager_no_fusion");
    std::vector<VertexId> Sources = pickSources(G, numSources(), 7);

    double FusedTime = 0, PlainTime = 0;
    int64_t FusedRounds = 0, PlainRounds = 0;
    for (VertexId Src : Sources) {
      SSSPResult A = deltaSteppingSSSP(G, Src, Fused);
      SSSPResult B = deltaSteppingSSSP(G, Src, Plain);
      if (A.Dist != B.Dist)
        std::printf("!! mismatch on %s\n", datasetName(Id));
      FusedTime += A.Stats.Seconds;
      PlainTime += B.Stats.Seconds;
      FusedRounds += A.Stats.Rounds;
      PlainRounds += B.Stats.Rounds;
    }
    int N = static_cast<int>(Sources.size());
    std::printf("%-8s%15.3fs%14lld%17.3fs%14lld\n", datasetName(Id),
                FusedTime / N, (long long)(FusedRounds / N),
                PlainTime / N, (long long)(PlainRounds / N));
  }
  return 0;
}
