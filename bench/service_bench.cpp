//===- bench/service_bench.cpp - Open-loop SLO benchmark ------------------===//
//
// Part of graphit-ordered, an independent C++ reproduction of "Optimizing
// Ordered Graph Algorithms with GraphIt" (CGO 2020). MIT License.
//
//===----------------------------------------------------------------------===//
//
// The serving-tier SLO benchmark: measures tail latency, not throughput.
// Three experiments over a live QueryEngine + SnapshotStore:
//
//  1. *Open-loop load* — queries arrive on an open-loop clock with a
//     concurrent writer publishing weight-update batches the whole time.
//     Three gated operating points: "steady" and "overload" use Poisson
//     arrivals (exponential gaps at the offered rate); "burst" drives the
//     same mean rate through a two-state Markov-modulated Poisson process
//     (exponentially-held ON bursts at 3x the rate, OFF lulls at a third
//     of it), so the gated tail reflects genuine arrival bursts rather
//     than smooth traffic. `--arrivals=poisson|burst|all` selects the
//     points (default all). Per-query end-to-end latency (submit →
//     collect, so queueing counts) goes into per-collector
//     LatencyHistograms merged at the end:
//
//       {"bench": "service_open_loop", "mode": "steady"|"overload"|"burst",
//        ..., "p50_us": ..., "p95_us": ..., "p99_us": ...,
//        "shed_rate": ..., "degraded_rate": ..., "deadline_rate": ...,
//        "max_queue_depth": ..., "tolerance": ...}
//
//     The perf gate (scripts/check_bench.py) keys on p99_us for these
//     lines; the wide per-line tolerance absorbs CI scheduling noise.
//     After the run the engine's answers are verified bit-exact against
//     naive PPSP on the final pinned snapshot.
//
//  2. *Adaptive batching sweep* — closed-loop bursts (8 submitters ×
//     depth 8 against 4 workers) at MaxBatchDelayMicros ∈ {0, 200,
//     1000}, emitting achieved_qps + p99_us per window: the measured
//     throughput-vs-tail tradeoff adaptive batching buys.
//
//  3. *Cross-engine hot-state sharing* — the same depot-PPSP workload
//     served by two engines with private hot caches vs one shared
//     HotStateCache: the shared warm-hit rate must win (an E2 miss on a
//     source E1 warmed becomes a hit), with bit-identical distances.
//
// Knobs: GRAPHIT_SCALE, GRAPHIT_SERVICE_QUERIES (open-loop arrivals),
//        GRAPHIT_SERVICE_WORKERS.
//
//===----------------------------------------------------------------------===//

#include "BenchUtil.h"

#include "algorithms/PPSP.h"
#include "graph/Builder.h"
#include "graph/Generators.h"
#include "service/QueryEngine.h"
#include "support/LatencyHistogram.h"
#include "support/Random.h"
#include "support/Timer.h"

#include <atomic>
#include <chrono>
#include <cmath>
#include <condition_variable>
#include <cstdio>
#include <cstring>
#include <deque>
#include <mutex>
#include <thread>
#include <vector>

using namespace graphit;
using namespace graphit::bench;
using namespace graphit::service;

namespace {

Graph buildRoad(Count Side) {
  RoadNetwork Net = roadGrid(Side, Side, 4242);
  BuildOptions Options;
  Options.Symmetrize = true;
  return GraphBuilder(Options).build(Net.NumNodes, Net.Edges,
                                     std::move(Net.Coords));
}

/// Locally-distributed point queries (the routing-service shape); even
/// indices PPSP, odd A* (the grid has coordinates). \p WindowDiv sets the
/// locality radius (Side / WindowDiv): 24 is the tight routing mix the
/// throughput benches use; the open-loop phase uses 4 (city-scale trips)
/// so per-query service time is large enough for a single generator
/// thread to pace a true Poisson arrival process against it.
std::vector<Query> makeQueries(Count Side, Count HowMany, uint64_t Seed,
                               Count WindowDiv = 24) {
  const Count Window = std::max<Count>(Side / WindowDiv, 8);
  std::vector<std::pair<VertexId, VertexId>> Pairs =
      localGridQueryPairs(Side, Side, Window, HowMany, Seed);
  std::vector<Query> Out;
  Out.reserve(Pairs.size());
  for (size_t I = 0; I < Pairs.size(); ++I) {
    Query Q;
    Q.Kind = (I & 1) ? QueryKind::AStar : QueryKind::PPSP;
    Q.Source = Pairs[I].first;
    Q.Target = Pairs[I].second;
    Out.push_back(Q);
  }
  return Out;
}

/// Weight perturbations on existing edges of the current snapshot — the
/// live-traffic incident stream the writer thread publishes.
std::vector<EdgeUpdate> incidentBatch(const DeltaGraph &Snap, Count HowMany,
                                      SplitMix64 &Rng) {
  std::vector<EdgeUpdate> Batch;
  const Count N = Snap.numNodes();
  while (static_cast<Count>(Batch.size()) < HowMany) {
    VertexId U = static_cast<VertexId>(Rng.nextInt(0, N));
    for (WNode E : Snap.outNeighbors(U)) {
      EdgeUpdate Up;
      Up.Src = U;
      Up.Dst = E.V;
      Up.W = static_cast<Weight>(Rng.nextInt(1, 400));
      Batch.push_back(Up);
      break;
    }
  }
  return Batch;
}

double toMicros(std::chrono::steady_clock::duration D) {
  return std::chrono::duration<double, std::micro>(D).count();
}

//===----------------------------------------------------------------------===//
// 1. Open-loop Poisson load with a concurrent writer
//===----------------------------------------------------------------------===//

struct OpenLoopResult {
  LatencyHistogram Latency; ///< Ok completions only
  uint64_t Ok = 0, Shed = 0, Deadline = 0, Degraded = 0, Failed = 0;
  size_t MaxQueueDepth = 0;
  double OfferedQps = 0, CompletedQps = 0;
};

void runOpenLoop(QueryEngine &Engine, Count Side, Count NumQueries,
                 double OfferedQps, bool Burst, OpenLoopResult &Out) {
  struct InFlight {
    uint64_t Ticket;
    std::chrono::steady_clock::time_point Submitted;
  };
  std::mutex QMu;
  std::condition_variable QCv;
  std::deque<InFlight> Handoff;
  bool GenDone = false;

  const int NumCollectors = 4;
  std::vector<std::unique_ptr<LatencyHistogram>> Hists;
  std::vector<std::thread> Collectors;
  std::atomic<uint64_t> Ok{0}, Shed{0}, Deadline{0}, Degraded{0}, Failed{0};
  for (int C = 0; C < NumCollectors; ++C)
    Hists.push_back(std::make_unique<LatencyHistogram>());
  for (int C = 0; C < NumCollectors; ++C)
    Collectors.emplace_back([&, C] {
      LatencyHistogram &H = *Hists[static_cast<size_t>(C)];
      while (true) {
        InFlight F;
        {
          std::unique_lock<std::mutex> Lock(QMu);
          QCv.wait(Lock, [&] { return !Handoff.empty() || GenDone; });
          if (Handoff.empty())
            return;
          F = Handoff.front();
          Handoff.pop_front();
        }
        std::optional<QueryResult> R = Engine.tryCollect(F.Ticket);
        const auto Now = std::chrono::steady_clock::now();
        if (!R) {
          Failed.fetch_add(1, std::memory_order_relaxed);
          continue;
        }
        if (R->Degraded)
          Degraded.fetch_add(1, std::memory_order_relaxed);
        switch (R->Status) {
        case QueryStatus::Ok:
          Ok.fetch_add(1, std::memory_order_relaxed);
          H.record(static_cast<uint64_t>(toMicros(Now - F.Submitted)));
          break;
        case QueryStatus::Shed:
          Shed.fetch_add(1, std::memory_order_relaxed);
          break;
        case QueryStatus::DeadlineExceeded:
          Deadline.fetch_add(1, std::memory_order_relaxed);
          break;
        case QueryStatus::Failed:
          Failed.fetch_add(1, std::memory_order_relaxed);
          break;
        }
      }
    });

  // Arrival clock. Poisson: exponential inter-arrival gaps at the offered
  // rate. Burst: a two-state Markov-modulated Poisson process — ON bursts
  // at 3x the offered rate, OFF lulls at a third of it, with
  // exponentially distributed holding times whose means (30ms ON, 90ms
  // OFF => pi_on = 1/4) keep the long-run mean at exactly OfferedQps:
  //   1/4 * 3R + 3/4 * R/3 = R.
  std::vector<Query> Queries =
      makeQueries(Side, NumQueries, 99, /*WindowDiv=*/4);
  SplitMix64 Rng(0x0DD5);
  size_t MaxDepth = 0;
  bool On = false;
  double PhaseLeftMicros = 0;
  Timer Wall;
  auto Next = std::chrono::steady_clock::now();
  for (Count I = 0; I < NumQueries; ++I) {
    double Rate = OfferedQps;
    if (Burst) {
      if (PhaseLeftMicros <= 0) {
        On = !On;
        PhaseLeftMicros = -std::log(1.0 - Rng.nextDouble()) *
                          (On ? 30'000.0 : 90'000.0);
      }
      Rate = On ? 3.0 * OfferedQps : OfferedQps / 3.0;
    }
    const double U = Rng.nextDouble();
    const double GapMicros = -std::log(1.0 - U) * (1e6 / Rate); // Exp(rate)
    PhaseLeftMicros -= GapMicros;
    Next += std::chrono::microseconds(static_cast<int64_t>(GapMicros));
    std::this_thread::sleep_until(Next);

    Query Q = Queries[static_cast<size_t>(I)];
    // Half the traffic carries an explicit 50ms SLO; the other half has
    // none, which is what soft-water degradation exists to bound.
    Q.DeadlineMicros = (I % 2 == 0) ? 50000 : 0;
    Q.Importance = (I % 4 == 0) ? 0 : 1;
    const auto Submitted = std::chrono::steady_clock::now();
    InFlight F{Engine.submit(Q), Submitted};
    {
      std::lock_guard<std::mutex> Lock(QMu);
      Handoff.push_back(F);
    }
    QCv.notify_one();
    if (I % 64 == 0)
      MaxDepth = std::max(MaxDepth, Engine.queueDepth());
  }
  {
    std::lock_guard<std::mutex> Lock(QMu);
    GenDone = true;
  }
  QCv.notify_all();
  for (std::thread &T : Collectors)
    T.join();
  const double WallSeconds = Wall.seconds();

  for (auto &H : Hists)
    Out.Latency.merge(*H);
  Out.Ok = Ok.load();
  Out.Shed = Shed.load();
  Out.Deadline = Deadline.load();
  Out.Degraded = Degraded.load();
  Out.Failed = Failed.load();
  Out.MaxQueueDepth = MaxDepth;
  Out.OfferedQps = OfferedQps;
  Out.CompletedQps = static_cast<double>(Ok.load()) / WallSeconds;
}

//===----------------------------------------------------------------------===//
// 2. Adaptive-batching sweep (closed-loop bursts)
//===----------------------------------------------------------------------===//

void runBatchSweep(const Graph &G, Count Side) {
  const int NumSubmitters = 8;
  const int Depth = 8;
  const Count PerSubmitter = static_cast<Count>(
      envInt("GRAPHIT_SERVICE_QUERIES", 4000) / NumSubmitters);

  for (int64_t Window : {int64_t{0}, int64_t{200}, int64_t{1000}}) {
    QueryEngine::Options Opts;
    Opts.NumWorkers = 4;
    Opts.DefaultSchedule.Delta = 1024;
    Opts.MaxBatchDelayMicros = Window;
    Opts.MaxBatchSize = 16;
    QueryEngine Engine(G, Opts);

    std::vector<std::unique_ptr<LatencyHistogram>> Hists;
    for (int S = 0; S < NumSubmitters; ++S)
      Hists.push_back(std::make_unique<LatencyHistogram>());

    Timer Wall;
    std::vector<std::thread> Submitters;
    for (int S = 0; S < NumSubmitters; ++S)
      Submitters.emplace_back([&, S] {
        LatencyHistogram &H = *Hists[static_cast<size_t>(S)];
        std::vector<Query> Queries = makeQueries(
            Side, PerSubmitter, 1000 + static_cast<uint64_t>(S));
        for (Count I = 0; I < PerSubmitter; I += Depth) {
          const Count End = std::min(PerSubmitter, I + Depth);
          std::vector<uint64_t> Tickets;
          const auto Start = std::chrono::steady_clock::now();
          for (Count J = I; J < End; ++J)
            Tickets.push_back(
                Engine.submit(Queries[static_cast<size_t>(J)]));
          for (uint64_t T : Tickets) {
            (void)Engine.collect(T);
            H.record(static_cast<uint64_t>(
                toMicros(std::chrono::steady_clock::now() - Start)));
          }
        }
      });
    for (std::thread &T : Submitters)
      T.join();
    const double Seconds = Wall.seconds();

    LatencyHistogram All;
    for (auto &H : Hists)
      All.merge(*H);
    const double Qps = static_cast<double>(All.count()) / Seconds;
    std::printf("{\"bench\": \"service_batch_sweep\", \"window\": %lld, "
                "\"achieved_qps\": %.1f, \"p50_us\": %llu, "
                "\"p99_us\": %llu, \"max_window_us\": %lld, "
                "\"tolerance\": 0.4}\n",
                static_cast<long long>(Window), Qps,
                static_cast<unsigned long long>(All.percentile(50)),
                static_cast<unsigned long long>(All.percentile(99)),
                static_cast<long long>(Engine.maxBatchWindowMicros()));
  }
}

//===----------------------------------------------------------------------===//
// 3. Cross-engine hot-state sharing: private LRUs vs one shared cache
//===----------------------------------------------------------------------===//

struct HotPhaseResult {
  double HitRate = 0;
  double Qps = 0;
  int64_t Checksum = 0;
};

/// Runs the depot workload over two engines on a fresh store: E1 warms 8
/// depot SSSPs, then depot PPSPs alternate between the engines with
/// update batches (same seed both phases) applied between rounds.
HotPhaseResult runHotPhase(const Graph &G, bool Shared) {
  SnapshotStore Store(G);
  QueryEngine::Options O1;
  O1.NumWorkers = 2;
  O1.DefaultSchedule.Delta = 1024;
  O1.HotSourceCapacity = 16;
  QueryEngine E1(Store, O1);
  QueryEngine::Options O2 = O1;
  if (Shared) {
    O2.HotSourceCapacity = 0;
    O2.SharedHotCache = E1.hotCache();
  }
  QueryEngine E2(Store, O2);

  const int NumDepots = 8;
  std::vector<VertexId> Depots;
  SplitMix64 Rng(0xD0D0);
  for (int D = 0; D < NumDepots; ++D)
    Depots.push_back(static_cast<VertexId>(Rng.nextInt(0, G.numNodes())));
  {
    std::vector<Query> WarmUp;
    for (VertexId D : Depots) {
      Query Q;
      Q.Kind = QueryKind::SSSP;
      Q.Source = D;
      WarmUp.push_back(Q);
    }
    (void)E1.runBatch(WarmUp); // E1 warms every depot
  }

  HotPhaseResult R;
  uint64_t NumPPSP = 0;
  Timer Wall;
  for (int Round = 0; Round < 4; ++Round) {
    for (int I = 0; I < 64; ++I) {
      Query Q;
      Q.Kind = QueryKind::PPSP;
      Q.Source = Depots[static_cast<size_t>(I % NumDepots)];
      Q.Target = static_cast<VertexId>(Rng.nextInt(0, G.numNodes()));
      QueryEngine &E = (I & 1) ? E2 : E1;
      QueryResult Res = E.runBatch({Q})[0];
      if (Res.Dist < kInfiniteDistance)
        R.Checksum += static_cast<int64_t>(Res.Dist);
      ++NumPPSP;
    }
    // Advance the store one version through E1 (shared phase: the one
    // repair pass serves both engines). Incident batch, fixed seed
    // stream: both phases see identical graphs every round.
    SplitMix64 URng(7000 + static_cast<uint64_t>(Round));
    E1.applyUpdates(incidentBatch(*Store.current(), 24, URng));
  }
  const double Seconds = Wall.seconds();
  R.HitRate = static_cast<double>(E1.hotHits() + E2.hotHits()) /
              static_cast<double>(NumPPSP);
  R.Qps = static_cast<double>(NumPPSP) / Seconds;
  return R;
}

void runHotSharing(const Graph &G) {
  HotPhaseResult Private = runHotPhase(G, /*Shared=*/false);
  HotPhaseResult Shared = runHotPhase(G, /*Shared=*/true);
  if (Private.Checksum != Shared.Checksum) {
    std::fprintf(stderr,
                 "service_bench: hot-sharing checksum mismatch "
                 "(private %lld vs shared %lld)\n",
                 static_cast<long long>(Private.Checksum),
                 static_cast<long long>(Shared.Checksum));
    std::exit(1);
  }
  if (Shared.HitRate <= Private.HitRate) {
    std::fprintf(stderr,
                 "service_bench: shared hot cache must beat private LRUs "
                 "(%.3f vs %.3f)\n",
                 Shared.HitRate, Private.HitRate);
    std::exit(1);
  }
  std::printf("{\"bench\": \"service_hot_sharing\", \"mode\": \"private\", "
              "\"hit_rate\": %.4f, \"qps\": %.1f, \"check\": %lld, "
              "\"tolerance\": 0.1}\n",
              Private.HitRate, Private.Qps,
              static_cast<long long>(Private.Checksum));
  std::printf("{\"bench\": \"service_hot_sharing\", \"mode\": \"shared\", "
              "\"hit_rate\": %.4f, \"qps\": %.1f, \"check\": %lld, "
              "\"tolerance\": 0.1}\n",
              Shared.HitRate, Shared.Qps,
              static_cast<long long>(Shared.Checksum));
}

} // namespace

int main(int argc, char **argv) {
  const char *Arrivals = "all";
  for (int I = 1; I < argc; ++I) {
    if (std::strncmp(argv[I], "--arrivals=", 11) == 0 &&
        (std::strcmp(argv[I] + 11, "poisson") == 0 ||
         std::strcmp(argv[I] + 11, "burst") == 0 ||
         std::strcmp(argv[I] + 11, "all") == 0)) {
      Arrivals = argv[I] + 11;
    } else {
      std::fprintf(stderr,
                   "usage: %s [--arrivals=poisson|burst|all]\n", argv[0]);
      return 2;
    }
  }

  banner("service_bench — open-loop SLO benchmark over the live engine",
         "tail latency stays bounded under Poisson and bursty load with "
         "live writes; adaptive batching trades p99 for throughput; "
         "shared hot cache lifts the warm-hit rate");

  const Count Side =
      std::max<Count>(static_cast<Count>(150 * datasetScaleFromEnv()), 60);
  Graph G = buildRoad(Side);
  const Count NumQueries =
      static_cast<Count>(envInt("GRAPHIT_SERVICE_QUERIES", 4000));
  const int NumWorkers = envInt("GRAPHIT_SERVICE_WORKERS", 4);
  std::printf("# road grid %u x %u (%u nodes), %u open-loop arrivals, "
              "%d workers\n",
              static_cast<unsigned>(Side), static_cast<unsigned>(Side),
              static_cast<unsigned>(G.numNodes()),
              static_cast<unsigned>(NumQueries), NumWorkers);

  SnapshotStore Store(G);
  QueryEngine::Options Opts;
  Opts.NumWorkers = NumWorkers;
  Opts.DefaultSchedule.Delta = 1024;
  Opts.AdmissionHighWater = 512;
  Opts.AdmissionSoftWater = 128;
  QueryEngine Engine(Store, Opts);

  // Closed-loop capacity estimate: how fast the engine drains this query
  // mix with the queue kept full (a generous upper bound — the open-loop
  // phases below pay per-arrival wakeups the batch path amortizes away).
  double CapacityQps;
  {
    std::vector<Query> Probe = makeQueries(Side, 1024, 31, /*WindowDiv=*/4);
    (void)Engine.runBatch(Probe); // warm worker states and the allocator
    Timer Clock;
    (void)Engine.runBatch(Probe);
    CapacityQps = 1024.0 / Clock.seconds();
  }

  // Three operating points, each its own gated line: *steady* (a fixed
  // low Poisson rate well under capacity — the queue stays shallow and
  // the tail is honest queueing; fixed, not probe-relative, so probe
  // noise does not leak into the gated p99), *overload* (far past
  // sustainable — the tail is whatever deadlines + admission control make
  // of it, which is exactly what they exist to bound), and *burst* (the
  // steady mean rate delivered as Markov-modulated on/off bursts — the
  // tail now prices transient queue build-up the Poisson points never
  // form). Steady and burst tails are order statistics over few samples,
  // so they get the wider tolerance.
  const struct {
    const char *Mode;
    double FixedQps;    // used when > 0
    double Factor;      // of probed capacity, otherwise
    double Tolerance;
    bool Burst;
  } Points[] = {{"steady", 2000.0, 0.0, 1.0, false},
                {"overload", 0.0, 0.60, 0.5, false},
                {"burst", 2000.0, 0.0, 1.0, true}};
  for (const auto &Point : Points) {
    const bool WantBurst = std::strcmp(Arrivals, "burst") == 0;
    if (std::strcmp(Arrivals, "all") != 0 && Point.Burst != WantBurst)
      continue;
    const double OfferedQps =
        Point.FixedQps > 0 ? Point.FixedQps : Point.Factor * CapacityQps;
    std::printf("# closed-loop capacity ~%.0f qps; offering %.0f qps "
                "(%s)\n",
                CapacityQps, OfferedQps, Point.Mode);

    // Concurrent writer: one incident batch every ~2ms for the whole
    // phase, routed through the engine like production traffic.
    std::atomic<bool> StopWriter{false};
    std::atomic<uint64_t> BatchesApplied{0};
    std::thread Writer([&] {
      SplitMix64 WRng(0xBEEF);
      while (!StopWriter.load(std::memory_order_relaxed)) {
        auto Snap = Store.current();
        Engine.applyUpdates(incidentBatch(*Snap, 16, WRng));
        BatchesApplied.fetch_add(1, std::memory_order_relaxed);
        std::this_thread::sleep_for(std::chrono::milliseconds(2));
      }
    });

    OpenLoopResult OL;
    runOpenLoop(Engine, Side, NumQueries, OfferedQps, Point.Burst, OL);
    StopWriter.store(true);
    Writer.join();

    const double N = static_cast<double>(NumQueries);
    std::printf("{\"bench\": \"service_open_loop\", \"mode\": \"%s\", "
                "\"offered_qps\": %.1f, \"completed_qps\": %.1f, "
                "\"p50_us\": %llu, \"p95_us\": %llu, \"p99_us\": %llu, "
                "\"mean_us\": %.1f, \"shed_rate\": %.4f, "
                "\"degraded_rate\": %.4f, \"deadline_rate\": %.4f, "
                "\"max_queue_depth\": %zu, \"update_batches\": %llu, "
                "\"tolerance\": %.1f}\n",
                Point.Mode, OL.OfferedQps, OL.CompletedQps,
                static_cast<unsigned long long>(OL.Latency.percentile(50)),
                static_cast<unsigned long long>(OL.Latency.percentile(95)),
                static_cast<unsigned long long>(OL.Latency.percentile(99)),
                OL.Latency.mean(), static_cast<double>(OL.Shed) / N,
                static_cast<double>(OL.Degraded) / N,
                static_cast<double>(OL.Deadline) / N, OL.MaxQueueDepth,
                static_cast<unsigned long long>(BatchesApplied.load()),
                Point.Tolerance);
    if (OL.Failed > 0) {
      std::fprintf(stderr, "service_bench: %llu queries failed\n",
                   static_cast<unsigned long long>(OL.Failed));
      return 1;
    }
  }

  // Post-run verification: with the writer quiesced, the engine's PPSP
  // answers on the final version must match naive single-threaded runs
  // on the pinned snapshot bit for bit.
  {
    Graph Final = Store.current()->compact();
    std::vector<Query> Checks = makeQueries(Side, 64, 4711);
    for (Query &Q : Checks)
      Q.Kind = QueryKind::PPSP;
    std::vector<QueryResult> Got = Engine.runBatch(Checks);
    for (size_t I = 0; I < Checks.size(); ++I) {
      PPSPResult Ref = pointToPointShortestPath(
          Final, Checks[I].Source, Checks[I].Target, Opts.DefaultSchedule);
      if (Got[I].Dist != Ref.Dist) {
        std::fprintf(stderr,
                     "service_bench: verification mismatch on query %zu\n",
                     I);
        return 1;
      }
    }
    std::printf("# verification: 64/64 engine answers match naive PPSP on "
                "the final snapshot\n");
  }

  runBatchSweep(G, Side);
  runHotSharing(G);
  return 0;
}
