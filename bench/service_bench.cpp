//===- bench/service_bench.cpp - Open-loop SLO benchmark ------------------===//
//
// Part of graphit-ordered, an independent C++ reproduction of "Optimizing
// Ordered Graph Algorithms with GraphIt" (CGO 2020). MIT License.
//
//===----------------------------------------------------------------------===//
//
// The serving-tier SLO benchmark: measures tail latency, not throughput.
// Three experiments over a live QueryEngine:
//
//  1. *Open-loop load* — queries arrive on an open-loop clock with a
//     concurrent writer publishing weight-update batches the whole time.
//     Four gated operating points, each on a fresh engine with the
//     feedback controller on (Options::ClassSlo + ControllerInterval):
//     "steady" and "overload" use Poisson arrivals (exponential gaps at
//     the offered rate); "burst" drives the same mean rate through a
//     two-state Markov-modulated Poisson process (exponentially-held ON
//     bursts at 3x the rate, OFF lulls at a third of it); "diurnal"
//     layers the same MMPP on a sinusoidally modulated base rate (a
//     compressed day whose mean is the offered rate), so the controller
//     has to track a moving operating point, not just find one.
//     `--arrivals=poisson|burst|diurnal|all` selects the points
//     (default all). Traffic is two-class: every 4th arrival is premium
//     (importance 3 -> class 0, no deadline of its own — the class SLO
//     is its only protection); the rest are bulk (importance 0 ->
//     class 3), half of which carry an explicit 50ms deadline. The
//     first quarter of each phase is controller warm-up and excluded
//     from the recorded (gated) histograms. Per-query end-to-end
//     latency (submit -> collect, so queueing counts) goes into
//     per-collector LatencyHistograms merged at the end:
//
//       {"bench": "service_open_loop", "mode": "steady"|"overload"|
//        "burst"|"diurnal"|"sharded", ..., "p99_us": ...,
//        "ctl_ticks": ..., "tolerance": ...}
//       {"bench": "service_open_loop", "mode": ..., "class": 0|3,
//        "p50_us": ..., "p99_us": ..., "ok": ..., "shed": ...,
//        "tolerance": ...}
//
//     The perf gate (scripts/check_bench.py) keys on p99_us for these
//     lines ("class" is a key field; the per-class lines deliberately
//     carry no qps so p99_us stays the canonical metric); the wide
//     per-line tolerance absorbs CI scheduling noise. The overload
//     point first runs a controller-off twin (static knobs, emitted as
//     a `#` comment) and then asserts in-binary that with the
//     controller on (a) premium class-0 p99 meets its SLO, (b)
//     completed qps stays within 2x of the static baseline, and (c)
//     the controller settles — the tighten/relax trace must not
//     oscillate. A failing assert prints the controller trajectory.
//     The "sharded" point replays the steady profile over a
//     ShardedSnapshotStore-backed engine: the controller and per-class
//     accounting must serve both Store models. After the points the
//     engines' answers are verified bit-exact against naive PPSP on
//     each store's final pinned snapshot.
//
//  2. *Adaptive batching sweep* — closed-loop bursts (8 submitters ×
//     depth 8 against 4 workers) at MaxBatchDelayMicros ∈ {0, 200,
//     1000}, emitting achieved_qps + p99_us per window: the measured
//     throughput-vs-tail tradeoff adaptive batching buys.
//
//  3. *Cross-engine hot-state sharing* — the same depot-PPSP workload
//     served by two engines with private hot caches vs one shared
//     HotStateCache: the shared warm-hit rate must win (an E2 miss on a
//     source E1 warmed becomes a hit), with bit-identical distances.
//
// Knobs: GRAPHIT_SCALE, GRAPHIT_SERVICE_QUERIES (open-loop arrivals),
//        GRAPHIT_SERVICE_WORKERS.
//
//===----------------------------------------------------------------------===//

#include "BenchUtil.h"

#include "algorithms/PPSP.h"
#include "graph/Builder.h"
#include "graph/Generators.h"
#include "service/QueryEngine.h"
#include "support/LatencyHistogram.h"
#include "support/Random.h"
#include "support/Timer.h"

#include <atomic>
#include <chrono>
#include <cmath>
#include <condition_variable>
#include <cstdio>
#include <cstring>
#include <deque>
#include <mutex>
#include <thread>
#include <vector>

using namespace graphit;
using namespace graphit::bench;
using namespace graphit::service;

namespace {

Graph buildRoad(Count Side) {
  RoadNetwork Net = roadGrid(Side, Side, 4242);
  BuildOptions Options;
  Options.Symmetrize = true;
  return GraphBuilder(Options).build(Net.NumNodes, Net.Edges,
                                     std::move(Net.Coords));
}

/// Locally-distributed point queries (the routing-service shape); even
/// indices PPSP, odd A* (the grid has coordinates). \p WindowDiv sets the
/// locality radius (Side / WindowDiv): 24 is the tight routing mix the
/// throughput benches use; the open-loop phase uses 4 (city-scale trips)
/// so per-query service time is large enough for a single generator
/// thread to pace a true Poisson arrival process against it.
std::vector<Query> makeQueries(Count Side, Count HowMany, uint64_t Seed,
                               Count WindowDiv = 24) {
  const Count Window = std::max<Count>(Side / WindowDiv, 8);
  std::vector<std::pair<VertexId, VertexId>> Pairs =
      localGridQueryPairs(Side, Side, Window, HowMany, Seed);
  std::vector<Query> Out;
  Out.reserve(Pairs.size());
  for (size_t I = 0; I < Pairs.size(); ++I) {
    Query Q;
    Q.Kind = (I & 1) ? QueryKind::AStar : QueryKind::PPSP;
    Q.Source = Pairs[I].first;
    Q.Target = Pairs[I].second;
    Out.push_back(Q);
  }
  return Out;
}

/// Weight perturbations on existing edges of the current snapshot — the
/// live-traffic incident stream the writer thread publishes. Templated
/// over the snapshot view so the same stream drives SnapshotStore
/// (DeltaGraph) and ShardedSnapshotStore (ShardedDeltaView) phases.
template <class ViewT>
std::vector<EdgeUpdate> incidentBatch(const ViewT &Snap, Count HowMany,
                                      SplitMix64 &Rng) {
  std::vector<EdgeUpdate> Batch;
  const Count N = Snap.numNodes();
  while (static_cast<Count>(Batch.size()) < HowMany) {
    VertexId U = static_cast<VertexId>(Rng.nextInt(0, N));
    for (WNode E : Snap.outNeighbors(U)) {
      EdgeUpdate Up;
      Up.Src = U;
      Up.Dst = E.V;
      Up.W = static_cast<Weight>(Rng.nextInt(1, 400));
      Batch.push_back(Up);
      break;
    }
  }
  return Batch;
}

double toMicros(std::chrono::steady_clock::duration D) {
  return std::chrono::duration<double, std::micro>(D).count();
}

//===----------------------------------------------------------------------===//
// 1. Open-loop load with a concurrent writer
//===----------------------------------------------------------------------===//

/// The premium class-0 p99 SLO asserted in-binary under overload.
constexpr int64_t kPremiumSloMicros = 30000;

/// What the controller actually steers toward (Options::ClassSlo) — a
/// control margin below the published SLO. Steering *at* the SLO parks
/// the equilibrium on the bound, where histogram quantization (p99
/// reports a bucket upper bound, within 1/16) and deadline-poll
/// granularity make marginal misses a coin flip.
constexpr int64_t kPremiumSloTargetMicros = 24000;

/// Virtual length of the compressed "day" the diurnal point sweeps; two
/// full sinusoid periods fit a default 4000-arrival phase at 2000 qps.
constexpr double kDiurnalPeriodMicros = 1e6;

enum class ArrivalModel { Poisson, Burst, Diurnal };

struct OpenLoopResult {
  /// Ok completions in the measured window (warm-up excluded).
  LatencyHistogram Latency;
  LatencyHistogram ClassLatency[kNumImportanceClasses];
  uint64_t OkByClass[kNumImportanceClasses] = {};
  uint64_t ShedByClass[kNumImportanceClasses] = {};
  /// Whole-phase status counts (warm-up included).
  uint64_t Ok = 0, Shed = 0, Deadline = 0, Degraded = 0, Failed = 0;
  size_t MaxQueueDepth = 0;
  double OfferedQps = 0, CompletedQps = 0;
};

template <class EngineT>
void runOpenLoop(EngineT &Engine, Count Side, Count NumQueries,
                 double OfferedQps, ArrivalModel Model, OpenLoopResult &Out) {
  struct InFlight {
    uint64_t Ticket;
    std::chrono::steady_clock::time_point Submitted;
    int Class;
    bool Warm;
  };
  std::mutex QMu;
  std::condition_variable QCv;
  std::deque<InFlight> Handoff;
  bool GenDone = false;

  // The leading quarter of the phase is controller warm-up: submitted
  // and collected like everything else, but excluded from the gated
  // histograms and the measured qps, so the recorded tail reflects the
  // settled operating point rather than the cold-start transient.
  const Count WarmCount = NumQueries / 4;

  struct CollectorHists {
    LatencyHistogram All;
    LatencyHistogram PerClass[kNumImportanceClasses];
  };
  const int NumCollectors = 4;
  std::vector<std::unique_ptr<CollectorHists>> Hists;
  std::vector<std::thread> Collectors;
  std::atomic<uint64_t> Ok{0}, Shed{0}, Deadline{0}, Degraded{0}, Failed{0};
  std::atomic<uint64_t> OkMeasured{0};
  std::atomic<uint64_t> OkByClass[kNumImportanceClasses] = {};
  std::atomic<uint64_t> ShedByClass[kNumImportanceClasses] = {};
  for (int C = 0; C < NumCollectors; ++C)
    Hists.push_back(std::make_unique<CollectorHists>());
  for (int C = 0; C < NumCollectors; ++C)
    Collectors.emplace_back([&, C] {
      CollectorHists &H = *Hists[static_cast<size_t>(C)];
      while (true) {
        InFlight F;
        {
          std::unique_lock<std::mutex> Lock(QMu);
          QCv.wait(Lock, [&] { return !Handoff.empty() || GenDone; });
          if (Handoff.empty())
            return;
          F = Handoff.front();
          Handoff.pop_front();
        }
        std::optional<QueryResult> R = Engine.tryCollect(F.Ticket);
        const auto Now = std::chrono::steady_clock::now();
        if (!R) {
          Failed.fetch_add(1, std::memory_order_relaxed);
          continue;
        }
        if (R->Degraded)
          Degraded.fetch_add(1, std::memory_order_relaxed);
        const size_t Class = static_cast<size_t>(F.Class);
        switch (R->Status) {
        case QueryStatus::Ok:
          Ok.fetch_add(1, std::memory_order_relaxed);
          if (!F.Warm) {
            const uint64_t Micros =
                static_cast<uint64_t>(toMicros(Now - F.Submitted));
            H.All.record(Micros);
            H.PerClass[Class].record(Micros);
            OkMeasured.fetch_add(1, std::memory_order_relaxed);
            OkByClass[Class].fetch_add(1, std::memory_order_relaxed);
          }
          break;
        case QueryStatus::Shed:
          Shed.fetch_add(1, std::memory_order_relaxed);
          if (!F.Warm)
            ShedByClass[Class].fetch_add(1, std::memory_order_relaxed);
          break;
        case QueryStatus::DeadlineExceeded:
          Deadline.fetch_add(1, std::memory_order_relaxed);
          break;
        case QueryStatus::Failed:
          Failed.fetch_add(1, std::memory_order_relaxed);
          break;
        }
      }
    });

  // Arrival clock. Poisson: exponential inter-arrival gaps at the offered
  // rate. Burst: a two-state Markov-modulated Poisson process — ON bursts
  // at 3x the offered rate, OFF lulls at a third of it, with
  // exponentially distributed holding times whose means (30ms ON, 90ms
  // OFF => pi_on = 1/4) keep the long-run mean at exactly OfferedQps:
  //   1/4 * 3R + 3/4 * R/3 = R.
  // Diurnal: the same MMPP riding a sinusoid-modulated base rate,
  //   B(t) = R * (1 + 0.6 sin(2π t / period)),
  // whose mean over full periods is R — a compressed day/night sweep the
  // controller has to track through both the peak and the trough.
  std::vector<Query> Queries =
      makeQueries(Side, NumQueries, 99, /*WindowDiv=*/4);
  SplitMix64 Rng(0x0DD5);
  size_t MaxDepth = 0;
  bool On = false;
  double PhaseLeftMicros = 0;
  double VirtualMicros = 0; // arrival-clock time, for the sinusoid
  auto MeasStart = std::chrono::steady_clock::now();
  auto Next = std::chrono::steady_clock::now();
  for (Count I = 0; I < NumQueries; ++I) {
    double Base = OfferedQps;
    if (Model == ArrivalModel::Diurnal)
      Base = OfferedQps *
             (1.0 + 0.6 * std::sin(2.0 * M_PI * VirtualMicros /
                                   kDiurnalPeriodMicros));
    double Rate = Base;
    if (Model != ArrivalModel::Poisson) {
      if (PhaseLeftMicros <= 0) {
        On = !On;
        PhaseLeftMicros = -std::log(1.0 - Rng.nextDouble()) *
                          (On ? 30'000.0 : 90'000.0);
      }
      Rate = On ? 3.0 * Base : Base / 3.0;
    }
    const double U = Rng.nextDouble();
    const double GapMicros = -std::log(1.0 - U) * (1e6 / Rate); // Exp(rate)
    PhaseLeftMicros -= GapMicros;
    VirtualMicros += GapMicros;
    Next += std::chrono::microseconds(static_cast<int64_t>(GapMicros));
    std::this_thread::sleep_until(Next);
    if (I == WarmCount)
      MeasStart = std::chrono::steady_clock::now();

    Query Q = Queries[static_cast<size_t>(I)];
    // Two-class traffic: every 4th arrival is premium (class 0) with no
    // deadline of its own — the class SLO is its only protection. Bulk
    // (class 3) half carries an explicit 50ms deadline; the deadline-less
    // half is what soft-water degradation exists to bound.
    Q.Importance = (I % 4 == 0) ? kNumImportanceClasses - 1 : 0;
    Q.DeadlineMicros = (Q.Importance == 0 && I % 2 == 0) ? 50000 : 0;
    const int Class = importanceClass(Q.Importance);
    const auto Submitted = std::chrono::steady_clock::now();
    InFlight F{Engine.submit(Q), Submitted, Class, I < WarmCount};
    {
      std::lock_guard<std::mutex> Lock(QMu);
      Handoff.push_back(F);
    }
    QCv.notify_one();
    if (I % 64 == 0)
      MaxDepth = std::max(MaxDepth, Engine.queueDepth());
  }
  {
    std::lock_guard<std::mutex> Lock(QMu);
    GenDone = true;
  }
  QCv.notify_all();
  for (std::thread &T : Collectors)
    T.join();
  const double MeasuredSeconds =
      toMicros(std::chrono::steady_clock::now() - MeasStart) / 1e6;

  for (auto &H : Hists) {
    Out.Latency.merge(H->All);
    for (int C = 0; C < kNumImportanceClasses; ++C)
      Out.ClassLatency[C].merge(H->PerClass[C]);
  }
  for (int C = 0; C < kNumImportanceClasses; ++C) {
    Out.OkByClass[C] = OkByClass[C].load();
    Out.ShedByClass[C] = ShedByClass[C].load();
  }
  Out.Ok = Ok.load();
  Out.Shed = Shed.load();
  Out.Deadline = Deadline.load();
  Out.Degraded = Degraded.load();
  Out.Failed = Failed.load();
  Out.MaxQueueDepth = MaxDepth;
  Out.OfferedQps = OfferedQps;
  Out.CompletedQps =
      static_cast<double>(OkMeasured.load()) / MeasuredSeconds;
}

/// Engine options shared by every open-loop phase. With \p Controller
/// the class-0 SLO and the feedback loop are enabled; without, the same
/// static knobs serve as the baseline twin.
template <class EngineT>
typename EngineT::Options openLoopOpts(int NumWorkers, bool Controller) {
  typename EngineT::Options Opts;
  Opts.NumWorkers = NumWorkers;
  Opts.DefaultSchedule.Delta = 1024;
  Opts.AdmissionHighWater = 512;
  Opts.AdmissionSoftWater = 128;
  Opts.MaxBatchDelayMicros = 400;
  if (Controller) {
    Opts.ClassSlo[0] = kPremiumSloTargetMicros;
    Opts.ControllerIntervalMicros = 20000;
    Opts.ControllerMinSamples = 16;
    // Damp the relax side: the quantized knob ladder has no state whose
    // p99 sits inside a narrow dead band, so with the default slack
    // fraction the loop limit-cycles (relax probe, tighten correction,
    // repeat). A wide dead band + longer hysteresis makes relax probes
    // rare once the tight state holds the target.
    Opts.ControllerSlackFraction = 0.45;
    Opts.ControllerHysteresisTicks = 4;
    Opts.ControllerMinHighWater = 32;
    Opts.ControllerMinSoftWater = 16;
    Opts.ControllerMinBatchDelayMicros = 0;
  }
  return Opts;
}

/// Runs one open-loop phase: the arrival generator plus a concurrent
/// writer publishing an incident batch every ~2ms, routed through the
/// engine like production traffic. Returns the update-batch count.
template <class StoreT, class EngineT>
uint64_t runPhase(StoreT &Store, EngineT &Engine, Count Side,
                  Count NumQueries, double OfferedQps, ArrivalModel Model,
                  OpenLoopResult &Out) {
  std::atomic<bool> StopWriter{false};
  std::atomic<uint64_t> BatchesApplied{0};
  std::thread Writer([&] {
    SplitMix64 WRng(0xBEEF);
    while (!StopWriter.load(std::memory_order_relaxed)) {
      auto Snap = Store.current();
      Engine.applyUpdates(incidentBatch(*Snap, 16, WRng));
      BatchesApplied.fetch_add(1, std::memory_order_relaxed);
      std::this_thread::sleep_for(std::chrono::milliseconds(2));
    }
  });
  runOpenLoop(Engine, Side, NumQueries, OfferedQps, Model, Out);
  StopWriter.store(true);
  Writer.join();
  return BatchesApplied.load();
}

/// Prints the controller trajectory as `#` comment lines (subsampled to
/// at most ~16) — stdout is tee'd into the gate's current file and
/// check_bench.py skips comments, so a failing gate shows exactly what
/// the controller did.
void printControllerTrace(const char *Mode,
                          const std::vector<ControllerEvent> &Trace) {
  const size_t Stride = std::max<size_t>(1, Trace.size() / 16);
  for (size_t I = 0; I < Trace.size(); I += Stride) {
    const ControllerEvent &E = Trace[I];
    std::printf("# ctl %s tick=%llu action=%+d delay_us=%lld high=%llu "
                "soft=%llu p99_0=%llu n_0=%llu p99_3=%llu n_3=%llu\n",
                Mode, static_cast<unsigned long long>(E.Tick), E.Action,
                static_cast<long long>(E.BatchDelayMicros),
                static_cast<unsigned long long>(E.HighWater),
                static_cast<unsigned long long>(E.SoftWater),
                static_cast<unsigned long long>(E.WindowP99Micros[0]),
                static_cast<unsigned long long>(E.WindowCount[0]),
                static_cast<unsigned long long>(E.WindowP99Micros[3]),
                static_cast<unsigned long long>(E.WindowCount[3]));
  }
}

/// Tighten/relax sign flips over Trace[From..): the settle criterion.
/// A settled controller tightens into the operating point and holds (or
/// relaxes once when load recedes); sustained alternation is the
/// oscillation the hysteresis exists to prevent.
int controllerSignFlips(const std::vector<ControllerEvent> &Trace,
                        size_t From) {
  int Last = 0, Flips = 0;
  for (size_t I = From; I < Trace.size(); ++I) {
    const int A = Trace[I].Action;
    if (A == 0)
      continue;
    if (Last != 0 && A != Last)
      ++Flips;
    Last = A;
  }
  return Flips;
}

/// Emits the gated aggregate line plus one per-class line for the two
/// classes the traffic mix uses. The per-class lines carry no qps on
/// purpose: check_bench's METRIC_PRIORITY would rank achieved_qps above
/// p99_us, and p99 is the contract these lines gate.
void emitOpenLoopLines(const char *Mode, const OpenLoopResult &OL,
                       uint64_t UpdateBatches, double Tolerance,
                       uint64_t CtlTicks, uint64_t CtlTightens,
                       uint64_t CtlRelaxes, Count NumQueries) {
  const double N = static_cast<double>(NumQueries);
  std::printf("{\"bench\": \"service_open_loop\", \"mode\": \"%s\", "
              "\"offered_qps\": %.1f, \"completed_qps\": %.1f, "
              "\"p50_us\": %llu, \"p95_us\": %llu, \"p99_us\": %llu, "
              "\"mean_us\": %.1f, \"shed_rate\": %.4f, "
              "\"degraded_rate\": %.4f, \"deadline_rate\": %.4f, "
              "\"max_queue_depth\": %zu, \"update_batches\": %llu, "
              "\"ctl_ticks\": %llu, \"ctl_tightens\": %llu, "
              "\"ctl_relaxes\": %llu, \"tolerance\": %.1f}\n",
              Mode, OL.OfferedQps, OL.CompletedQps,
              static_cast<unsigned long long>(OL.Latency.percentile(50)),
              static_cast<unsigned long long>(OL.Latency.percentile(95)),
              static_cast<unsigned long long>(OL.Latency.percentile(99)),
              OL.Latency.mean(), static_cast<double>(OL.Shed) / N,
              static_cast<double>(OL.Degraded) / N,
              static_cast<double>(OL.Deadline) / N, OL.MaxQueueDepth,
              static_cast<unsigned long long>(UpdateBatches),
              static_cast<unsigned long long>(CtlTicks),
              static_cast<unsigned long long>(CtlTightens),
              static_cast<unsigned long long>(CtlRelaxes), Tolerance);
  for (int Class : {0, kNumImportanceClasses - 1}) {
    const LatencyHistogram &H =
        OL.ClassLatency[static_cast<size_t>(Class)];
    std::printf("{\"bench\": \"service_open_loop\", \"mode\": \"%s\", "
                "\"class\": %d, \"p50_us\": %llu, \"p99_us\": %llu, "
                "\"ok\": %llu, \"shed\": %llu, \"tolerance\": %.1f}\n",
                Mode, Class,
                static_cast<unsigned long long>(H.percentile(50)),
                static_cast<unsigned long long>(H.percentile(99)),
                static_cast<unsigned long long>(
                    OL.OkByClass[static_cast<size_t>(Class)]),
                static_cast<unsigned long long>(
                    OL.ShedByClass[static_cast<size_t>(Class)]),
                Tolerance);
  }
}

/// Post-phase verification: with the writer quiesced, a fresh engine's
/// PPSP answers on the store's final version must match naive
/// single-threaded runs on the pinned snapshot bit for bit.
template <class StoreT>
void verifyAgainstNaive(StoreT &Store, Count Side, Count HowMany,
                        int NumWorkers, const char *What) {
  using EngineT = BasicQueryEngine<StoreT>;
  EngineT Engine(Store, openLoopOpts<EngineT>(NumWorkers, false));
  Graph Final = Store.current()->compact();
  std::vector<Query> Checks = makeQueries(Side, HowMany, 4711);
  for (Query &Q : Checks)
    Q.Kind = QueryKind::PPSP;
  Schedule Sched;
  Sched.Delta = 1024;
  std::vector<QueryResult> Got = Engine.runBatch(Checks);
  for (size_t I = 0; I < Checks.size(); ++I) {
    PPSPResult Ref = pointToPointShortestPath(Final, Checks[I].Source,
                                              Checks[I].Target, Sched);
    if (Got[I].Dist != Ref.Dist) {
      std::fprintf(
          stderr,
          "service_bench: %s verification mismatch on query %zu\n", What,
          I);
      std::exit(1);
    }
  }
  std::printf("# verification (%s): %u/%u engine answers match naive "
              "PPSP on the final snapshot\n",
              What, static_cast<unsigned>(HowMany),
              static_cast<unsigned>(HowMany));
}

//===----------------------------------------------------------------------===//
// 2. Adaptive-batching sweep (closed-loop bursts)
//===----------------------------------------------------------------------===//

void runBatchSweep(const Graph &G, Count Side) {
  const int NumSubmitters = 8;
  const int Depth = 8;
  const Count PerSubmitter = static_cast<Count>(
      envInt("GRAPHIT_SERVICE_QUERIES", 4000) / NumSubmitters);

  for (int64_t Window : {int64_t{0}, int64_t{200}, int64_t{1000}}) {
    QueryEngine::Options Opts;
    Opts.NumWorkers = 4;
    Opts.DefaultSchedule.Delta = 1024;
    Opts.MaxBatchDelayMicros = Window;
    Opts.MaxBatchSize = 16;
    QueryEngine Engine(G, Opts);

    std::vector<std::unique_ptr<LatencyHistogram>> Hists;
    for (int S = 0; S < NumSubmitters; ++S)
      Hists.push_back(std::make_unique<LatencyHistogram>());

    Timer Wall;
    std::vector<std::thread> Submitters;
    for (int S = 0; S < NumSubmitters; ++S)
      Submitters.emplace_back([&, S] {
        LatencyHistogram &H = *Hists[static_cast<size_t>(S)];
        std::vector<Query> Queries = makeQueries(
            Side, PerSubmitter, 1000 + static_cast<uint64_t>(S));
        for (Count I = 0; I < PerSubmitter; I += Depth) {
          const Count End = std::min(PerSubmitter, I + Depth);
          std::vector<uint64_t> Tickets;
          const auto Start = std::chrono::steady_clock::now();
          for (Count J = I; J < End; ++J)
            Tickets.push_back(
                Engine.submit(Queries[static_cast<size_t>(J)]));
          for (uint64_t T : Tickets) {
            (void)Engine.collect(T);
            H.record(static_cast<uint64_t>(
                toMicros(std::chrono::steady_clock::now() - Start)));
          }
        }
      });
    for (std::thread &T : Submitters)
      T.join();
    const double Seconds = Wall.seconds();

    LatencyHistogram All;
    for (auto &H : Hists)
      All.merge(*H);
    const double Qps = static_cast<double>(All.count()) / Seconds;
    std::printf("{\"bench\": \"service_batch_sweep\", \"window\": %lld, "
                "\"achieved_qps\": %.1f, \"p50_us\": %llu, "
                "\"p99_us\": %llu, \"max_window_us\": %lld, "
                "\"tolerance\": 0.4}\n",
                static_cast<long long>(Window), Qps,
                static_cast<unsigned long long>(All.percentile(50)),
                static_cast<unsigned long long>(All.percentile(99)),
                static_cast<long long>(Engine.maxBatchWindowMicros()));
  }
}

//===----------------------------------------------------------------------===//
// 3. Cross-engine hot-state sharing: private LRUs vs one shared cache
//===----------------------------------------------------------------------===//

struct HotPhaseResult {
  double HitRate = 0;
  double Qps = 0;
  int64_t Checksum = 0;
};

/// Runs the depot workload over two engines on a fresh store: E1 warms 8
/// depot SSSPs, then depot PPSPs alternate between the engines with
/// update batches (same seed both phases) applied between rounds.
HotPhaseResult runHotPhase(const Graph &G, bool Shared) {
  SnapshotStore Store(G);
  QueryEngine::Options O1;
  O1.NumWorkers = 2;
  O1.DefaultSchedule.Delta = 1024;
  O1.HotSourceCapacity = 16;
  QueryEngine E1(Store, O1);
  QueryEngine::Options O2 = O1;
  if (Shared) {
    O2.HotSourceCapacity = 0;
    O2.SharedHotCache = E1.hotCache();
  }
  QueryEngine E2(Store, O2);

  const int NumDepots = 8;
  std::vector<VertexId> Depots;
  SplitMix64 Rng(0xD0D0);
  for (int D = 0; D < NumDepots; ++D)
    Depots.push_back(static_cast<VertexId>(Rng.nextInt(0, G.numNodes())));
  {
    std::vector<Query> WarmUp;
    for (VertexId D : Depots) {
      Query Q;
      Q.Kind = QueryKind::SSSP;
      Q.Source = D;
      WarmUp.push_back(Q);
    }
    (void)E1.runBatch(WarmUp); // E1 warms every depot
  }

  HotPhaseResult R;
  uint64_t NumPPSP = 0;
  Timer Wall;
  for (int Round = 0; Round < 4; ++Round) {
    for (int I = 0; I < 64; ++I) {
      Query Q;
      Q.Kind = QueryKind::PPSP;
      Q.Source = Depots[static_cast<size_t>(I % NumDepots)];
      Q.Target = static_cast<VertexId>(Rng.nextInt(0, G.numNodes()));
      QueryEngine &E = (I & 1) ? E2 : E1;
      QueryResult Res = E.runBatch({Q})[0];
      if (Res.Dist < kInfiniteDistance)
        R.Checksum += static_cast<int64_t>(Res.Dist);
      ++NumPPSP;
    }
    // Advance the store one version through E1 (shared phase: the one
    // repair pass serves both engines). Incident batch, fixed seed
    // stream: both phases see identical graphs every round.
    SplitMix64 URng(7000 + static_cast<uint64_t>(Round));
    E1.applyUpdates(incidentBatch(*Store.current(), 24, URng));
  }
  const double Seconds = Wall.seconds();
  R.HitRate = static_cast<double>(E1.hotHits() + E2.hotHits()) /
              static_cast<double>(NumPPSP);
  R.Qps = static_cast<double>(NumPPSP) / Seconds;
  return R;
}

void runHotSharing(const Graph &G) {
  HotPhaseResult Private = runHotPhase(G, /*Shared=*/false);
  HotPhaseResult Shared = runHotPhase(G, /*Shared=*/true);
  if (Private.Checksum != Shared.Checksum) {
    std::fprintf(stderr,
                 "service_bench: hot-sharing checksum mismatch "
                 "(private %lld vs shared %lld)\n",
                 static_cast<long long>(Private.Checksum),
                 static_cast<long long>(Shared.Checksum));
    std::exit(1);
  }
  if (Shared.HitRate <= Private.HitRate) {
    std::fprintf(stderr,
                 "service_bench: shared hot cache must beat private LRUs "
                 "(%.3f vs %.3f)\n",
                 Shared.HitRate, Private.HitRate);
    std::exit(1);
  }
  std::printf("{\"bench\": \"service_hot_sharing\", \"mode\": \"private\", "
              "\"hit_rate\": %.4f, \"qps\": %.1f, \"check\": %lld, "
              "\"tolerance\": 0.1}\n",
              Private.HitRate, Private.Qps,
              static_cast<long long>(Private.Checksum));
  std::printf("{\"bench\": \"service_hot_sharing\", \"mode\": \"shared\", "
              "\"hit_rate\": %.4f, \"qps\": %.1f, \"check\": %lld, "
              "\"tolerance\": 0.1}\n",
              Shared.HitRate, Shared.Qps,
              static_cast<long long>(Shared.Checksum));
}

} // namespace

int main(int argc, char **argv) {
  const char *Arrivals = "all";
  for (int I = 1; I < argc; ++I) {
    if (std::strncmp(argv[I], "--arrivals=", 11) == 0 &&
        (std::strcmp(argv[I] + 11, "poisson") == 0 ||
         std::strcmp(argv[I] + 11, "burst") == 0 ||
         std::strcmp(argv[I] + 11, "diurnal") == 0 ||
         std::strcmp(argv[I] + 11, "all") == 0)) {
      Arrivals = argv[I] + 11;
    } else {
      std::fprintf(stderr,
                   "usage: %s [--arrivals=poisson|burst|diurnal|all]\n",
                   argv[0]);
      return 2;
    }
  }

  banner("service_bench — open-loop SLO benchmark over the live engine",
         "per-class tails stay bounded under Poisson, bursty, and "
         "diurnal load with live writes; the feedback controller holds "
         "the premium SLO under overload; adaptive batching trades p99 "
         "for throughput; shared hot cache lifts the warm-hit rate");

  const Count Side =
      std::max<Count>(static_cast<Count>(150 * datasetScaleFromEnv()), 60);
  Graph G = buildRoad(Side);
  const Count NumQueries =
      static_cast<Count>(envInt("GRAPHIT_SERVICE_QUERIES", 4000));
  const int NumWorkers = envInt("GRAPHIT_SERVICE_WORKERS", 4);
  std::printf("# road grid %u x %u (%u nodes), %u open-loop arrivals, "
              "%d workers, premium SLO %lld us\n",
              static_cast<unsigned>(Side), static_cast<unsigned>(Side),
              static_cast<unsigned>(G.numNodes()),
              static_cast<unsigned>(NumQueries), NumWorkers,
              static_cast<long long>(kPremiumSloMicros));

  SnapshotStore Store(G);

  // Closed-loop capacity estimate on a throwaway engine: how fast the
  // engine drains this query mix with the queue kept full (a generous
  // upper bound — the open-loop phases below pay per-arrival wakeups the
  // batch path amortizes away).
  double CapacityQps;
  {
    QueryEngine Probe(Store, openLoopOpts<QueryEngine>(NumWorkers, false));
    std::vector<Query> ProbeQ =
        makeQueries(Side, 1024, 31, /*WindowDiv=*/4);
    (void)Probe.runBatch(ProbeQ); // warm worker states and the allocator
    Timer Clock;
    (void)Probe.runBatch(ProbeQ);
    CapacityQps = 1024.0 / Clock.seconds();
  }

  // Four operating points, each a fresh controller-on engine and its own
  // gated lines: *steady* (a fixed low Poisson rate well under capacity —
  // the queue stays shallow and the tail is honest queueing; fixed, not
  // probe-relative, so probe noise does not leak into the gated p99),
  // *overload* (far past open-loop sustainable — the tail is whatever the
  // controller, deadlines, and admission control make of it, which is
  // exactly what they exist to bound), *burst* (the steady mean delivered
  // as Markov-modulated on/off bursts), and *diurnal* (the same bursts
  // riding a compressed day/night sinusoid — the controller tracks a
  // moving operating point). Steady/burst/diurnal tails are order
  // statistics over few samples, so they get the wider tolerance.
  const struct {
    const char *Mode;
    const char *Arr; // which --arrivals value selects this point
    double FixedQps; // used when > 0
    double Factor;   // of probed capacity, otherwise
    double Tolerance;
    ArrivalModel Model;
  } Points[] = {
      {"steady", "poisson", 2000.0, 0.0, 1.0, ArrivalModel::Poisson},
      {"overload", "poisson", 6000.0, 0.12, 0.5, ArrivalModel::Poisson},
      {"burst", "burst", 2000.0, 0.0, 1.0, ArrivalModel::Burst},
      {"diurnal", "diurnal", 2000.0, 0.0, 1.0, ArrivalModel::Diurnal}};
  for (const auto &Point : Points) {
    if (std::strcmp(Arrivals, "all") != 0 &&
        std::strcmp(Arrivals, Point.Arr) != 0)
      continue;
    // Overload offers the larger of 3x the steady rate and a slice of
    // probed capacity: decisively past open-loop sustainable (per-arrival
    // wakeups cost what the closed-loop probe amortizes away) yet long
    // enough — a ~0.7s phase at the default arrival count — for the
    // controller to tighten in, settle, and be measured there.
    const double OfferedQps =
        Point.FixedQps > 0
            ? std::max(Point.FixedQps, Point.Factor * CapacityQps)
            : Point.Factor * CapacityQps;
    std::printf("# closed-loop capacity ~%.0f qps; offering %.0f qps "
                "(%s)\n",
                CapacityQps, OfferedQps, Point.Mode);

    const bool IsOverload = std::strcmp(Point.Mode, "overload") == 0;
    // The overload point first runs a controller-off twin: same static
    // knobs, no feedback. Its numbers anchor the in-binary differential
    // below and are emitted as a comment, not a gated line.
    double StaticQps = 0;
    uint64_t StaticPremiumP99 = 0;
    if (IsOverload) {
      QueryEngine Off(Store, openLoopOpts<QueryEngine>(NumWorkers, false));
      OpenLoopResult OffR;
      (void)runPhase(Store, Off, Side, NumQueries, OfferedQps, Point.Model,
                     OffR);
      StaticQps = OffR.CompletedQps;
      StaticPremiumP99 = OffR.ClassLatency[0].percentile(99);
      std::printf("# overload static baseline (controller off): "
                  "completed_qps=%.1f premium_p99_us=%llu "
                  "bulk_p99_us=%llu shed=%llu\n",
                  OffR.CompletedQps,
                  static_cast<unsigned long long>(StaticPremiumP99),
                  static_cast<unsigned long long>(
                      OffR.ClassLatency[kNumImportanceClasses - 1]
                          .percentile(99)),
                  static_cast<unsigned long long>(OffR.Shed));
    }

    QueryEngine Engine(Store, openLoopOpts<QueryEngine>(NumWorkers, true));
    OpenLoopResult OL;
    const uint64_t Batches = runPhase(Store, Engine, Side, NumQueries,
                                      OfferedQps, Point.Model, OL);
    const std::vector<ControllerEvent> Trace = Engine.controllerTrace();
    emitOpenLoopLines(Point.Mode, OL, Batches, Point.Tolerance,
                      Engine.controllerTicks(), Engine.controllerTightens(),
                      Engine.controllerRelaxes(), NumQueries);
    printControllerTrace(Point.Mode, Trace);
    if (OL.Failed > 0) {
      std::fprintf(stderr, "service_bench: %llu queries failed (%s)\n",
                   static_cast<unsigned long long>(OL.Failed), Point.Mode);
      return 1;
    }

    if (IsOverload) {
      // The closed-loop contract, asserted in-binary: under overload the
      // premium class must meet its SLO, the controller must not give
      // away more than half the static baseline's throughput to get
      // there, and the knob trajectory must settle rather than oscillate
      // (flips measured over the back half of the trace — the front half
      // is the intended tighten-in transient).
      const uint64_t PremiumP99 = OL.ClassLatency[0].percentile(99);
      bool Bad = false;
      // Non-vacuity first: the SLO bound means nothing if premium never
      // completed (e.g. every premium query timed out or was shed).
      if (OL.OkByClass[0] < 50) {
        std::fprintf(stderr,
                     "service_bench: only %llu premium completions in "
                     "the measured overload window — SLO check would be "
                     "vacuous\n",
                     static_cast<unsigned long long>(OL.OkByClass[0]));
        Bad = true;
      }
      if (PremiumP99 > static_cast<uint64_t>(kPremiumSloMicros)) {
        std::fprintf(stderr,
                     "service_bench: premium p99 %llu us misses the %lld "
                     "us SLO under overload (static twin: %llu us)\n",
                     static_cast<unsigned long long>(PremiumP99),
                     static_cast<long long>(kPremiumSloMicros),
                     static_cast<unsigned long long>(StaticPremiumP99));
        Bad = true;
      }
      if (StaticQps > 0 && OL.CompletedQps < 0.5 * StaticQps) {
        std::fprintf(stderr,
                     "service_bench: controller-on qps %.1f fell below "
                     "half the static baseline %.1f\n",
                     OL.CompletedQps, StaticQps);
        Bad = true;
      }
      // "Settled" for AIMD means a bounded limit cycle, not a fixed
      // point: a healthy loop alternates a relax probe with a tighten
      // correction every few hysteresis periods, so a handful of sign
      // flips in the back half is expected — runaway oscillation is
      // flip-per-tick.
      const int Flips = controllerSignFlips(Trace, Trace.size() / 2);
      if (Flips > 4) {
        std::fprintf(stderr,
                     "service_bench: controller oscillated (%d "
                     "tighten/relax flips in the settled half)\n",
                     Flips);
        Bad = true;
      }
      if (Bad) {
        printControllerTrace("overload-FAIL", Trace);
        return 1;
      }
      std::printf("# overload differential: premium p99 %llu us <= SLO "
                  "%lld us (static %llu us), qps %.1f vs static %.1f, "
                  "%d flips\n",
                  static_cast<unsigned long long>(PremiumP99),
                  static_cast<long long>(kPremiumSloMicros),
                  static_cast<unsigned long long>(StaticPremiumP99),
                  OL.CompletedQps, StaticQps, Flips);
    }
  }

  verifyAgainstNaive(Store, Side, 64, NumWorkers, "snapshot-store");

  // The same controller + per-class machinery must serve the sharded
  // store: replay the steady profile over a ShardedSnapshotStore-backed
  // engine (half the arrivals — it is a portability point, not a second
  // steady measurement) and verify bit-identity on its final version.
  if (std::strcmp(Arrivals, "all") == 0) {
    ShardedSnapshotStore::Options SOpts;
    SOpts.NumShards = 4;
    ShardedSnapshotStore SStore(G, SOpts);
    {
      ShardedQueryEngine SEngine(
          SStore, openLoopOpts<ShardedQueryEngine>(NumWorkers, true));
      OpenLoopResult OL;
      const uint64_t Batches =
          runPhase(SStore, SEngine, Side, NumQueries / 2, 2000.0,
                   ArrivalModel::Poisson, OL);
      emitOpenLoopLines("sharded", OL, Batches, 1.0,
                        SEngine.controllerTicks(),
                        SEngine.controllerTightens(),
                        SEngine.controllerRelaxes(), NumQueries / 2);
      if (OL.Failed > 0) {
        std::fprintf(stderr,
                     "service_bench: %llu queries failed (sharded)\n",
                     static_cast<unsigned long long>(OL.Failed));
        return 1;
      }
    }
    verifyAgainstNaive(SStore, Side, 32, NumWorkers, "sharded-store");
  }

  runBatchSweep(G, Side);
  runHotSharing(G);
  return 0;
}
