//===- bench/delta_sweep.cpp - §6.2 delta-selection ablation ---------------===//
//
// Part of graphit-ordered, an independent C++ reproduction of "Optimizing
// Ordered Graph Algorithms with GraphIt" (CGO 2020). MIT License.
//
//===----------------------------------------------------------------------===//
//
// §6.2 "Delta Selection for Priority Coarsening": sweeps Δ for SSSP on a
// social graph and a road network — the best Δ should be small (1-100)
// for the social graph and large (2^13-2^17) for the road network — and
// sweeps the bucket-fusion threshold (DESIGN.md ablation #1).
//
//===----------------------------------------------------------------------===//

#include "BenchUtil.h"

#include "algorithms/SSSP.h"

using namespace graphit;
using namespace graphit::bench;

int main() {
  banner("Delta sweep (ablation, §6.2)",
         "best delta is small on social graphs, 2^13..2^17 on road "
         "networks; fusion threshold is forgiving around 1000");

  for (DatasetId Id : {DatasetId::LJ, DatasetId::RD}) {
    Graph G = makeDataset(Id, DatasetVariant::Directed);
    std::vector<VertexId> Sources = pickSources(G, numSources(), 99);
    std::printf("\n-- SSSP on %s: delta sweep (eager_with_fusion) --\n",
                datasetName(Id));
    std::printf("%12s%12s%12s\n", "delta", "seconds", "rounds");

    double BestTime = 1e30;
    int64_t BestDelta = 1;
    // On the full-size road network a Δ below ~2^6 produces hundreds of
    // thousands of near-empty rounds and takes minutes per run; the sweep
    // starts above that floor (the paper's road-optimal region is
    // 2^13-2^17 anyway).
    int FirstExp = isRoadNetwork(Id) ? 6 : 0;
    for (int Exp = FirstExp; Exp <= 17; Exp += 2) {
      int64_t Delta = int64_t{1} << Exp;
      Schedule S;
      S.configApplyPriorityUpdateDelta(Delta);
      double Total = 0;
      int64_t Rounds = 0;
      for (VertexId Src : Sources) {
        SSSPResult R = deltaSteppingSSSP(G, Src, S);
        Total += R.Stats.Seconds;
        Rounds += R.Stats.Rounds;
      }
      Total /= Sources.size();
      std::printf("%12lld%12.4f%12lld\n", (long long)Delta, Total,
                  (long long)(Rounds / (int64_t)Sources.size()));
      if (Total < BestTime) {
        BestTime = Total;
        BestDelta = Delta;
      }
    }
    std::printf("best delta for %s: %lld\n", datasetName(Id),
                (long long)BestDelta);
  }

  {
    Graph G = makeDataset(DatasetId::RD, DatasetVariant::Directed);
    std::vector<VertexId> Sources = pickSources(G, numSources(), 98);
    std::printf("\n-- SSSP on %s: fusion threshold sweep (delta=8192) "
                "--\n",
                datasetName(DatasetId::RD));
    std::printf("%12s%12s%12s%14s\n", "threshold", "seconds", "rounds",
                "fused rounds");
    for (int64_t Threshold : {10, 100, 1000, 10000, 100000}) {
      Schedule S;
      S.configApplyPriorityUpdateDelta(8192)
          .configBucketFusionThreshold(Threshold);
      double Total = 0;
      int64_t Rounds = 0, Fused = 0;
      for (VertexId Src : Sources) {
        SSSPResult R = deltaSteppingSSSP(G, Src, S);
        Total += R.Stats.Seconds;
        Rounds += R.Stats.Rounds;
        Fused += R.Stats.FusedRounds;
      }
      int N = static_cast<int>(Sources.size());
      std::printf("%12lld%12.4f%12lld%14lld\n", (long long)Threshold,
                  Total / N, (long long)(Rounds / N),
                  (long long)(Fused / N));
    }
  }
  return 0;
}
