//===- bench/micro_buckets.cpp - Bucket-structure microbenchmarks ---------===//
//
// Part of graphit-ordered, an independent C++ reproduction of "Optimizing
// Ordered Graph Algorithms with GraphIt" (CGO 2020). MIT License.
//
//===----------------------------------------------------------------------===//
//
// google-benchmark microbenchmarks for the primitive operations whose
// costs drive the §3 eager/lazy tradeoff analysis: lazy bucket updates,
// bucket extraction, the two histogram reduction schemes, and
// deduplication.
//
//===----------------------------------------------------------------------===//

#include "runtime/Dedup.h"
#include "runtime/Histogram.h"
#include "runtime/LazyBucketQueue.h"
#include "runtime/VertexSubset.h"
#include "support/Random.h"

#include <benchmark/benchmark.h>

using namespace graphit;

namespace {

std::vector<VertexId> randomIds(Count N, Count Universe, uint64_t Seed) {
  std::vector<VertexId> Ids(static_cast<size_t>(N));
  for (Count I = 0; I < N; ++I)
    Ids[I] = static_cast<VertexId>(hash64(Seed ^ I) % Universe);
  return Ids;
}

void BM_LazyBucketBulkUpdate(benchmark::State &State) {
  Count N = State.range(0);
  std::vector<VertexId> Ids(static_cast<size_t>(N));
  std::vector<int64_t> Keys(static_cast<size_t>(N));
  for (Count I = 0; I < N; ++I) {
    Ids[I] = static_cast<VertexId>(I);
    Keys[I] = static_cast<int64_t>(hash64(I) % 256);
  }
  for (auto _ : State) {
    LazyBucketQueue Q(N, 128, PriorityOrder::LowerFirst);
    Q.updateBuckets(Ids.data(), Keys.data(), N);
    benchmark::DoNotOptimize(Q.pendingEstimate());
  }
  State.SetItemsProcessed(State.iterations() * N);
}
BENCHMARK(BM_LazyBucketBulkUpdate)->Arg(1 << 12)->Arg(1 << 16)->Arg(1 << 20);

void BM_LazyBucketDrain(benchmark::State &State) {
  Count N = State.range(0);
  std::vector<VertexId> Ids(static_cast<size_t>(N));
  std::vector<int64_t> Keys(static_cast<size_t>(N));
  for (Count I = 0; I < N; ++I) {
    Ids[I] = static_cast<VertexId>(I);
    Keys[I] = static_cast<int64_t>(hash64(I) % 4096); // exercises overflow
  }
  for (auto _ : State) {
    LazyBucketQueue Q(N, 128, PriorityOrder::LowerFirst);
    Q.updateBuckets(Ids.data(), Keys.data(), N);
    Count Seen = 0;
    while (Q.nextBucket())
      Seen += static_cast<Count>(Q.currentBucket().size());
    benchmark::DoNotOptimize(Seen);
  }
  State.SetItemsProcessed(State.iterations() * N);
}
BENCHMARK(BM_LazyBucketDrain)->Arg(1 << 12)->Arg(1 << 16)->Arg(1 << 20);

void BM_HistogramAtomic(benchmark::State &State) {
  Count M = State.range(0), Universe = 1 << 14;
  std::vector<VertexId> Targets = randomIds(M, Universe, 3);
  HistogramBuffer H(Universe);
  std::vector<VertexId> Unique;
  std::vector<uint32_t> Counts;
  for (auto _ : State) {
    H.reduce(Targets.data(), M, HistogramMethod::AtomicCounts, Unique,
             Counts);
    benchmark::DoNotOptimize(Unique.size());
  }
  State.SetItemsProcessed(State.iterations() * M);
}
BENCHMARK(BM_HistogramAtomic)->Arg(1 << 16)->Arg(1 << 20);

void BM_HistogramLocalTables(benchmark::State &State) {
  Count M = State.range(0), Universe = 1 << 14;
  std::vector<VertexId> Targets = randomIds(M, Universe, 3);
  HistogramBuffer H(Universe);
  std::vector<VertexId> Unique;
  std::vector<uint32_t> Counts;
  for (auto _ : State) {
    H.reduce(Targets.data(), M, HistogramMethod::LocalTables, Unique,
             Counts);
    benchmark::DoNotOptimize(Unique.size());
  }
  State.SetItemsProcessed(State.iterations() * M);
}
BENCHMARK(BM_HistogramLocalTables)->Arg(1 << 16)->Arg(1 << 20);

void BM_DedupClaims(benchmark::State &State) {
  Count N = 1 << 16;
  std::vector<VertexId> Targets = randomIds(1 << 18, N, 9);
  DedupFlags Flags(N);
  std::vector<VertexId> Won;
  Won.reserve(static_cast<size_t>(N));
  for (auto _ : State) {
    Won.clear();
    for (VertexId V : Targets)
      if (Flags.claim(V))
        Won.push_back(V);
    Flags.release(Won.data(), static_cast<Count>(Won.size()));
    benchmark::DoNotOptimize(Won.size());
  }
  State.SetItemsProcessed(State.iterations() * (1 << 18));
}
BENCHMARK(BM_DedupClaims);

void BM_VertexSubsetSparseToDense(benchmark::State &State) {
  Count N = 1 << 20;
  std::vector<VertexId> Ids = randomIds(1 << 16, N, 4);
  std::sort(Ids.begin(), Ids.end());
  Ids.erase(std::unique(Ids.begin(), Ids.end()), Ids.end());
  for (auto _ : State) {
    VertexSubset S = VertexSubset::fromSparse(N, Ids);
    benchmark::DoNotOptimize(S.dense().data());
  }
}
BENCHMARK(BM_VertexSubsetSparseToDense);

} // namespace

BENCHMARK_MAIN();
