//===- bench/fig11_scalability.cpp - Figure 11 ----------------------------===//
//
// Part of graphit-ordered, an independent C++ reproduction of "Optimizing
// Ordered Graph Algorithms with GraphIt" (CGO 2020). MIT License.
//
//===----------------------------------------------------------------------===//
//
// Figure 11: thread scalability of SSSP for GraphIt / GAPBS / Julienne on
// a skewed social graph (TW), a large social graph (FT), and the road
// network (RD). Prints one series per framework per graph: time at each
// thread count, plus speedup over that framework's 1-thread time.
//
//===----------------------------------------------------------------------===//

#include "BenchUtil.h"

#include "algorithms/SSSP.h"
#include "baselines/GAPBSDeltaStepping.h"
#include "baselines/JulienneEngine.h"
#include "support/Parallel.h"

using namespace graphit;
using namespace graphit::bench;

int main() {
  banner("Figure 11: SSSP thread scalability",
         "all frameworks scale on social graphs; on the road network "
         "GraphIt (bucket fusion) scales best, Julienne's lazy overhead "
         "limits it");

  int MaxWorkers = getNumWorkers();
  std::vector<int> Threads;
  for (int T = 1; T <= MaxWorkers; T *= 2)
    Threads.push_back(T);
  if (Threads.back() != MaxWorkers)
    Threads.push_back(MaxWorkers);

  std::vector<DatasetId> Sets = {DatasetId::TW, DatasetId::FT,
                                 DatasetId::RD};
  for (DatasetId Id : Sets) {
    Graph G = makeDataset(Id, DatasetVariant::Directed);
    int64_t Delta = isRoadNetwork(Id) ? 8192 : 2;
    Schedule S;
    S.configApplyPriorityUpdateDelta(Delta);
    std::vector<VertexId> Sources = pickSources(G, numSources(), 13);

    std::printf("\n-- %s (%lld vertices, %lld edges) --\n",
                datasetName(Id), (long long)G.numNodes(),
                (long long)G.numEdges());
    cellHeader("threads");
    for (int T : Threads)
      std::printf("%12d", T);
    endRow();

    auto Series = [&](const char *Name, auto &&Run) {
      std::vector<double> Times;
      for (int T : Threads) {
        setNumWorkers(T);
        double Total = 0;
        for (VertexId Src : Sources)
          Total += timeBest([&] { Run(Src); });
        Times.push_back(Total / Sources.size());
      }
      setNumWorkers(MaxWorkers);
      cellHeader(Name);
      for (double T : Times)
        cellTime(T);
      endRow();
      cellHeader("  speedup");
      for (double T : Times)
        cellRatio(Times.front() / T);
      endRow();
    };

    Series("GraphIt",
           [&](VertexId Src) { deltaSteppingSSSP(G, Src, S); });
    Series("GAPBS", [&](VertexId Src) { gapbsSSSP(G, Src, Delta); });
    Series("Julienne",
           [&](VertexId Src) { julienneSSSP(G, Src, Delta); });
  }
  return 0;
}
