//===- bench/table7_eager_vs_lazy.cpp - Table 7 ---------------------------===//
//
// Part of graphit-ordered, an independent C++ reproduction of "Optimizing
// Ordered Graph Algorithms with GraphIt" (CGO 2020). MIT License.
//
//===----------------------------------------------------------------------===//
//
// Table 7: performance impact of eager vs lazy bucket updates. k-core
// (many redundant updates per vertex) should favor lazy with the
// constant-sum histogram; SSSP (few redundant updates) should favor
// eager — the core §3 tradeoff the scheduling language exposes.
//
//===----------------------------------------------------------------------===//

#include "BenchUtil.h"

#include "algorithms/KCore.h"
#include "algorithms/SSSP.h"

using namespace graphit;
using namespace graphit::bench;

int main() {
  banner("Table 7: eager vs lazy bucket updates",
         "lazy(+histogram) wins k-core by 2-4x; eager wins SSSP, "
         "overwhelmingly on the road network");

  std::vector<DatasetId> Sets = {DatasetId::LJ, DatasetId::TW,
                                 DatasetId::FT, DatasetId::WB,
                                 DatasetId::RD};

  std::printf("\n%-8s | %14s%14s | %14s%14s\n", "", "k-core", "",
              "SSSP", "");
  std::printf("%-8s | %14s%14s | %14s%14s\n", "graph", "eager(s)",
              "lazy(s)", "eager(s)", "lazy(s)");

  for (DatasetId Id : Sets) {
    // k-core on the symmetrized graph.
    double KEager, KLazy;
    {
      Graph G = makeDataset(Id, DatasetVariant::Symmetric);
      Schedule Eager;
      Eager.configApplyPriorityUpdate("eager_no_fusion");
      Schedule Lazy;
      Lazy.configApplyPriorityUpdate("lazy_constant_sum");
      KEager = timeBest([&] { kCoreDecomposition(G, Eager); });
      KLazy = timeBest([&] { kCoreDecomposition(G, Lazy); });
    }
    // SSSP on the directed weighted graph.
    double SEager, SLazy;
    {
      Graph G = makeDataset(Id, DatasetVariant::Directed);
      int64_t Delta = isRoadNetwork(Id) ? 8192 : 2;
      Schedule Eager;
      Eager.configApplyPriorityUpdate("eager_with_fusion")
          .configApplyPriorityUpdateDelta(Delta);
      Schedule Lazy;
      Lazy.configApplyPriorityUpdate("lazy")
          .configApplyPriorityUpdateDelta(Delta);
      std::vector<VertexId> Sources = pickSources(G, numSources(), 3);
      SEager = SLazy = 0;
      for (VertexId Src : Sources) {
        SEager += timeBest([&] { deltaSteppingSSSP(G, Src, Eager); });
        SLazy += timeBest([&] { deltaSteppingSSSP(G, Src, Lazy); });
      }
      SEager /= Sources.size();
      SLazy /= Sources.size();
    }
    std::printf("%-8s | %13.3fs%13.3fs | %13.3fs%13.3fs\n",
                datasetName(Id), KEager, KLazy, SEager, SLazy);
  }
  return 0;
}
