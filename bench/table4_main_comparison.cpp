//===- bench/table4_main_comparison.cpp - Table 4 -------------------------===//
//
// Part of graphit-ordered, an independent C++ reproduction of "Optimizing
// Ordered Graph Algorithms with GraphIt" (CGO 2020). MIT License.
//
//===----------------------------------------------------------------------===//
//
// Table 4: the headline running-time comparison — six ordered algorithms
// across the datasets and comparison systems:
//
//   GraphIt (this work, best schedule)   GAPBS (eager, no fusion)
//   Galois (approximate ordering)        Julienne (lazy + lambda buckets)
//   unordered (frontier Bellman-Ford / scan peeling)
//
// Cells are seconds, averaged over GRAPHIT_BENCH_SOURCES sources/pairs;
// "--" marks algorithm/system pairs the original framework does not
// support (same gaps as the paper's table).
//
//===----------------------------------------------------------------------===//

#include "BenchUtil.h"

#include "algorithms/AStar.h"
#include "algorithms/BellmanFord.h"
#include "algorithms/KCore.h"
#include "algorithms/PPSP.h"
#include "algorithms/SetCover.h"
#include "algorithms/SSSP.h"
#include "algorithms/WBFS.h"
#include "baselines/GAPBSDeltaStepping.h"
#include "baselines/GaloisApprox.h"
#include "baselines/JulienneEngine.h"

#include <map>

using namespace graphit;
using namespace graphit::bench;

namespace {

int64_t bestDelta(DatasetId Id) { return isRoadNetwork(Id) ? 8192 : 2; }

Schedule graphitDistanceSchedule(DatasetId Id) {
  Schedule S;
  S.configApplyPriorityUpdate("eager_with_fusion")
      .configApplyPriorityUpdateDelta(bestDelta(Id));
  return S;
}

struct Row {
  std::string System;
  std::map<std::string, double> Cells; // dataset -> seconds (-1 absent)
};

void printBlock(const char *Algorithm, const std::vector<DatasetId> &Sets,
                const std::vector<Row> &Rows) {
  std::printf("\n-- %s --\n", Algorithm);
  cellHeader("system");
  for (DatasetId Id : Sets)
    std::printf("%12s", datasetName(Id));
  endRow();
  for (const Row &R : Rows) {
    cellHeader(R.System.c_str());
    for (DatasetId Id : Sets) {
      auto It = R.Cells.find(datasetName(Id));
      cellTime(It == R.Cells.end() ? -1.0 : It->second);
    }
    endRow();
  }
}

/// Averages a per-source runner over the benchmark sources.
template <typename Fn>
double avgOverSources(const Graph &G, uint64_t Seed, Fn &&Run) {
  std::vector<VertexId> Sources = pickSources(G, numSources(), Seed);
  double Total = 0;
  for (VertexId Src : Sources)
    Total += timeBest([&] { Run(Src); });
  return Total / static_cast<double>(Sources.size());
}

/// Source/target pairs for point-to-point queries (balanced distances:
/// random pairs over the vertex set, as in §6.2).
template <typename Fn>
double avgOverPairs(const Graph &G, uint64_t Seed, Fn &&Run) {
  std::vector<VertexId> Sources = pickSources(G, numSources(), Seed);
  std::vector<VertexId> Targets = pickSources(G, numSources(), Seed ^ 0xF);
  double Total = 0;
  for (size_t I = 0; I < Sources.size(); ++I)
    Total += timeBest([&] { Run(Sources[I], Targets[I]); });
  return Total / static_cast<double>(Sources.size());
}

} // namespace

int main() {
  banner("Table 4: main running-time comparison (seconds)",
         "GraphIt fastest or within 6% everywhere; Julienne far behind "
         "on road SSSP; Galois competitive on road but work-inefficient; "
         "unordered orders of magnitude slower on road networks");

  std::vector<DatasetId> AllSets = allDatasets();
  std::vector<DatasetId> DistanceSets = {
      DatasetId::LJ, DatasetId::OK, DatasetId::TW, DatasetId::FT,
      DatasetId::WB, DatasetId::GE, DatasetId::RD};
  std::vector<DatasetId> SocialSets = socialDatasets();
  std::vector<DatasetId> RoadSets = roadDatasets();

  //===--- SSSP -----------------------------------------------------------===//
  {
    std::vector<Row> Rows(5);
    Rows[0].System = "GraphIt";
    Rows[1].System = "GAPBS";
    Rows[2].System = "Galois";
    Rows[3].System = "Julienne";
    Rows[4].System = "unordered";
    for (DatasetId Id : DistanceSets) {
      Graph G = makeDataset(Id, DatasetVariant::Directed);
      const char *N = datasetName(Id);
      int64_t Delta = bestDelta(Id);
      Schedule S = graphitDistanceSchedule(Id);
      Rows[0].Cells[N] = avgOverSources(
          G, 11, [&](VertexId Src) { deltaSteppingSSSP(G, Src, S); });
      Rows[1].Cells[N] = avgOverSources(
          G, 11, [&](VertexId Src) { gapbsSSSP(G, Src, Delta); });
      Rows[2].Cells[N] = avgOverSources(
          G, 11, [&](VertexId Src) { galoisSSSP(G, Src, Delta); });
      Rows[3].Cells[N] = avgOverSources(
          G, 11, [&](VertexId Src) { julienneSSSP(G, Src, Delta); });
      Rows[4].Cells[N] = avgOverSources(
          G, 11, [&](VertexId Src) { bellmanFordSSSP(G, Src); });
    }
    printBlock("SSSP (delta-stepping)", DistanceSets, Rows);
  }

  //===--- PPSP -----------------------------------------------------------===//
  {
    std::vector<Row> Rows(5);
    Rows[0].System = "GraphIt";
    Rows[1].System = "GAPBS";
    Rows[2].System = "Galois";
    Rows[3].System = "Julienne";
    Rows[4].System = "unordered";
    for (DatasetId Id : DistanceSets) {
      Graph G = makeDataset(Id, DatasetVariant::Directed);
      const char *N = datasetName(Id);
      int64_t Delta = bestDelta(Id);
      Schedule S = graphitDistanceSchedule(Id);
      Rows[0].Cells[N] = avgOverPairs(G, 21, [&](VertexId A, VertexId B) {
        pointToPointShortestPath(G, A, B, S);
      });
      Rows[1].Cells[N] = avgOverPairs(G, 21, [&](VertexId A, VertexId B) {
        gapbsPPSP(G, A, B, Delta);
      });
      Rows[2].Cells[N] = avgOverPairs(G, 21, [&](VertexId A, VertexId B) {
        galoisPPSP(G, A, B, Delta);
      });
      Rows[3].Cells[N] = avgOverPairs(G, 21, [&](VertexId A, VertexId B) {
        juliennePPSP(G, A, B, Delta);
      });
      // The unordered framework has no early exit: it runs full
      // Bellman-Ford (the paper's unordered PPSP equals its SSSP column).
      Rows[4].Cells[N] = avgOverSources(
          G, 21, [&](VertexId Src) { bellmanFordSSSP(G, Src); });
    }
    printBlock("PPSP (point-to-point, early exit)", DistanceSets, Rows);
  }

  //===--- wBFS -----------------------------------------------------------===//
  {
    std::vector<Row> Rows(4);
    Rows[0].System = "GraphIt";
    Rows[1].System = "GAPBS";
    Rows[2].System = "Julienne";
    Rows[3].System = "unordered";
    for (DatasetId Id : SocialSets) {
      Graph G = makeDataset(Id, DatasetVariant::DirectedLogWeights);
      const char *N = datasetName(Id);
      Schedule S; // wBFS pins delta to 1 internally
      Rows[0].Cells[N] = avgOverSources(
          G, 31, [&](VertexId Src) { weightedBFS(G, Src, S); });
      Rows[1].Cells[N] = avgOverSources(
          G, 31, [&](VertexId Src) { gapbsWBFS(G, Src); });
      Rows[2].Cells[N] = avgOverSources(
          G, 31, [&](VertexId Src) { julienneWBFS(G, Src); });
      Rows[3].Cells[N] = avgOverSources(
          G, 31, [&](VertexId Src) { bellmanFordSSSP(G, Src); });
    }
    printBlock("wBFS (weights in [1, log n))", SocialSets, Rows);
  }

  //===--- A* -------------------------------------------------------------===//
  {
    std::vector<Row> Rows(4);
    Rows[0].System = "GraphIt";
    Rows[1].System = "GAPBS";
    Rows[2].System = "Galois";
    Rows[3].System = "Julienne";
    for (DatasetId Id : RoadSets) {
      Graph G = makeDataset(Id, DatasetVariant::Directed);
      const char *N = datasetName(Id);
      int64_t Delta = 2048;
      Schedule S;
      S.configApplyPriorityUpdateDelta(Delta);
      Rows[0].Cells[N] = avgOverPairs(G, 41, [&](VertexId A, VertexId B) {
        aStarSearch(G, A, B, S);
      });
      Rows[1].Cells[N] = avgOverPairs(G, 41, [&](VertexId A, VertexId B) {
        gapbsAStar(G, A, B, Delta);
      });
      Rows[2].Cells[N] = avgOverPairs(G, 41, [&](VertexId A, VertexId B) {
        galoisAStar(G, A, B, Delta);
      });
      Rows[3].Cells[N] = avgOverPairs(G, 41, [&](VertexId A, VertexId B) {
        julienneAStar(G, A, B, Delta);
      });
    }
    printBlock("A* search (road networks)", RoadSets, Rows);
  }

  //===--- k-core ---------------------------------------------------------===//
  {
    std::vector<Row> Rows(3);
    Rows[0].System = "GraphIt";
    Rows[1].System = "Julienne";
    Rows[2].System = "unordered";
    for (DatasetId Id : DistanceSets) {
      Graph G = makeDataset(Id, DatasetVariant::Symmetric);
      const char *N = datasetName(Id);
      Schedule S;
      S.configApplyPriorityUpdate("lazy_constant_sum");
      Rows[0].Cells[N] = timeBest([&] { kCoreDecomposition(G, S); });
      Rows[1].Cells[N] = timeBest([&] { julienneKCore(G); });
      Rows[2].Cells[N] = timeBest([&] { kCoreUnordered(G); });
    }
    printBlock("k-core (Galois: unsupported)", DistanceSets, Rows);
  }

  //===--- SetCover -------------------------------------------------------===//
  {
    std::vector<Row> Rows(2);
    Rows[0].System = "GraphIt";
    Rows[1].System = "Julienne";
    for (DatasetId Id : DistanceSets) {
      Graph G = makeDataset(Id, DatasetVariant::Symmetric);
      const char *N = datasetName(Id);
      Rows[0].Cells[N] =
          timeBest([&] { approxSetCover(G, Schedule()); });
      Rows[1].Cells[N] = timeBest([&] { julienneSetCover(G); });
    }
    printBlock("Approximate SetCover (Galois/unordered: unsupported)",
               DistanceSets, Rows);
  }
  return 0;
}
