//===- bench/perf_smoke.cpp - Machine-readable perf trajectory ------------===//
//
// Part of graphit-ordered, an independent C++ reproduction of "Optimizing
// Ordered Graph Algorithms with GraphIt" (CGO 2020). MIT License.
//
//===----------------------------------------------------------------------===//
//
// Runs a fixed set of small, generated workloads and emits one line of
// JSON per workload:
//
//   {"bench": "<name>", "seconds": <best wall-clock>, "check": <int64>}
//
// The output is the repository's perf trajectory: each PR appends a run to
// BENCH_<host>.json so regressions in the ordered engines show up as a
// diff, not an anecdote. Workloads are sized to finish in seconds; the
// `check` field is a result checksum so a "speedup" that breaks answers is
// caught immediately.
//
//===----------------------------------------------------------------------===//

#include "BenchUtil.h"

#include "algorithms/KCore.h"
#include "algorithms/SSSP.h"
#include "graph/Builder.h"
#include "graph/Generators.h"

#include <cstdio>
#include <string>

using namespace graphit;
using namespace graphit::bench;

namespace {

void emit(const std::string &Name, double Seconds, int64_t Check) {
  std::printf("{\"bench\": \"%s\", \"seconds\": %.6f, \"check\": %lld}\n",
              Name.c_str(), Seconds, (long long)Check);
}

Graph rmatGraph() {
  std::vector<Edge> Edges = rmatEdges(16, 16, 12345);
  assignRandomWeights(Edges, 1, 256, 999);
  return GraphBuilder().build(Count{1} << 16, Edges);
}

Graph roadGraph() {
  RoadNetwork Net = roadGrid(600, 600, 4242);
  BuildOptions Options;
  Options.Symmetrize = true;
  return GraphBuilder(Options).build(Net.NumNodes, Net.Edges);
}

Graph socialGraph() {
  BuildOptions Options;
  Options.Symmetrize = true;
  Options.Weighted = false;
  return GraphBuilder(Options).build(Count{1} << 15, rmatEdges(15, 16, 777));
}

} // namespace

int main() {
  // SSSP on an RMAT graph: small delta, fused eager engine.
  {
    Graph G = rmatGraph();
    Schedule S;
    S.configApplyPriorityUpdateDelta(2);
    int64_t Check = 0;
    double T = timeBest([&] { Check = resultChecksum(deltaSteppingSSSP(G, 3, S).Dist); });
    emit("sssp_rmat_eager", T, Check);
  }

  // SSSP on a road-like grid: large delta, where bucket fusion and cheap
  // next-bucket selection dominate (many near-empty rounds).
  {
    Graph G = roadGraph();
    Schedule S;
    S.configApplyPriorityUpdateDelta(8192);
    int64_t Check = 0;
    double T = timeBest([&] { Check = resultChecksum(deltaSteppingSSSP(G, 0, S).Dist); });
    emit("sssp_road_eager", T, Check);

    Schedule Lazy;
    Lazy.configApplyPriorityUpdate("lazy").configApplyPriorityUpdateDelta(8192);
    double TL = timeBest([&] { Check = resultChecksum(deltaSteppingSSSP(G, 0, Lazy).Dist); });
    emit("sssp_road_lazy", TL, Check);
  }

  // k-core on a symmetrized RMAT graph: lazy and histogram strategies.
  {
    Graph G = socialGraph();
    for (const char *Spec : {"lazy", "lazy_constant_sum"}) {
      Schedule S = Schedule::parse(Spec);
      int64_t Check = 0;
      double T =
          timeBest([&] { Check = resultChecksum(kCoreDecomposition(G, S).Coreness); });
      emit(std::string("kcore_") + Spec, T, Check);
    }
  }
  return 0;
}
