//===- bench/perf_smoke.cpp - Machine-readable perf trajectory ------------===//
//
// Part of graphit-ordered, an independent C++ reproduction of "Optimizing
// Ordered Graph Algorithms with GraphIt" (CGO 2020). MIT License.
//
//===----------------------------------------------------------------------===//
//
// Runs a fixed set of small, generated workloads and emits one line of
// JSON per workload:
//
//   {"bench": "<name>"[, "ordering": "<layout>"], "build_s": <one-time
//    graph build/reorder cost>, "seconds": <best solve wall-clock>,
//    "check": <int64>}
//
// The output is the repository's perf trajectory: each PR appends a run to
// BENCH_<host>.json so regressions in the ordered engines show up as a
// diff, not an anecdote. Workloads are sized to finish in seconds; the
// `check` field is a result checksum so a "speedup" that breaks answers is
// caught immediately. `build_s` is kept out of `seconds` so the perf gate
// never conflates one-time layout cost with steady-state solve speed.
//
// The reordered variants (`ordering` field) run the same workload on a
// cache-conscious vertex layout (graph/Reorder.h); their checksums must
// equal the identity-layout value (the checksum is a sum over vertices,
// so it is permutation-invariant) or the bench aborts.
//
//===----------------------------------------------------------------------===//

#include "BenchUtil.h"

#include "algorithms/KCore.h"
#include "algorithms/SSSP.h"
#include "graph/Builder.h"
#include "graph/Generators.h"
#include "graph/Reorder.h"
#include "support/Abort.h"
#include "support/Timer.h"

#include <cstdio>
#include <string>

using namespace graphit;
using namespace graphit::bench;

namespace {

Graph rmatGraph() {
  std::vector<Edge> Edges = rmatEdges(16, 16, 12345);
  assignRandomWeights(Edges, 1, 256, 999);
  return GraphBuilder().build(Count{1} << 16, Edges);
}

Graph roadGraph() {
  RoadNetwork Net = roadGrid(600, 600, 4242);
  BuildOptions Options;
  Options.Symmetrize = true;
  return GraphBuilder(Options).build(Net.NumNodes, Net.Edges);
}

/// Runs SSSP on a reordered copy of \p G and emits the line; aborts if the
/// checksum diverges from \p ReferenceCheck.
void reorderedVariant(const char *Name, const Graph &G, VertexId Source,
                      const Schedule &S, ReorderKind Kind,
                      int64_t ReferenceCheck) {
  Timer BuildClock;
  VertexMapping Map;
  Graph P = reorderGraph(G, Kind, &Map, /*Seed=*/0x0EDE5,
                         /*SourceHint=*/Source);
  double BuildSeconds = BuildClock.seconds();
  int64_t Check = 0;
  double T = timeBest([&] {
    Check = resultChecksum(deltaSteppingSSSP(P, Map.toInternal(Source), S).Dist);
  });
  if (Check != ReferenceCheck)
    fatalError("perf_smoke: reordered checksum diverged");
  emitBench(Name, T, Check, BuildSeconds, reorderKindName(Kind));
}

} // namespace

int main() {
  // SSSP on an RMAT graph: small delta, fused eager engine. The degree
  // layout packs the hubs — the classic skewed-graph win.
  {
    Timer BuildClock;
    Graph G = rmatGraph();
    double BuildSeconds = BuildClock.seconds();
    Schedule S;
    S.configApplyPriorityUpdateDelta(2);
    int64_t Check = 0;
    double T = timeBest(
        [&] { Check = resultChecksum(deltaSteppingSSSP(G, 3, S).Dist); });
    emitBench("sssp_rmat_eager", T, Check, BuildSeconds);
    reorderedVariant("sssp_rmat_eager", G, 3, S, ReorderKind::Degree, Check);
  }

  // SSSP on a road-like grid: large delta, where bucket fusion and cheap
  // next-bucket selection dominate (many near-empty rounds). The BFS
  // layout makes each Δ-bucket's wavefront a contiguous id band.
  {
    Timer BuildClock;
    Graph G = roadGraph();
    double BuildSeconds = BuildClock.seconds();
    Schedule S;
    S.configApplyPriorityUpdateDelta(8192);
    int64_t Check = 0;
    double T = timeBest(
        [&] { Check = resultChecksum(deltaSteppingSSSP(G, 0, S).Dist); });
    emitBench("sssp_road_eager", T, Check, BuildSeconds);
    reorderedVariant("sssp_road_eager", G, 0, S, ReorderKind::Bfs, Check);

    Schedule Lazy;
    Lazy.configApplyPriorityUpdate("lazy").configApplyPriorityUpdateDelta(
        8192);
    double TL = timeBest(
        [&] { Check = resultChecksum(deltaSteppingSSSP(G, 0, Lazy).Dist); });
    emitBench("sssp_road_lazy", TL, Check, BuildSeconds);
  }

  // k-core on a symmetrized RMAT graph: lazy and histogram strategies.
  {
    Timer BuildClock;
    BuildOptions Options;
    Options.Symmetrize = true;
    Options.Weighted = false;
    Graph G =
        GraphBuilder(Options).build(Count{1} << 15, rmatEdges(15, 16, 777));
    double BuildSeconds = BuildClock.seconds();
    for (const char *Spec : {"lazy", "lazy_constant_sum"}) {
      Schedule S = Schedule::parse(Spec);
      int64_t Check = 0;
      double T = timeBest(
          [&] { Check = resultChecksum(kCoreDecomposition(G, S).Coreness); });
      emitBench(std::string("kcore_") + Spec, T, Check, BuildSeconds);
    }
  }
  return 0;
}
