//===- bench/table5_linecount.cpp - Table 5 -------------------------------===//
//
// Part of graphit-ordered, an independent C++ reproduction of "Optimizing
// Ordered Graph Algorithms with GraphIt" (CGO 2020). MIT License.
//
//===----------------------------------------------------------------------===//
//
// Table 5: lines-of-code comparison. The GraphIt column counts the
// shipped .gt programs (non-blank, non-comment). The framework columns
// count the corresponding hand-written implementations in this
// repository's baseline proxies (function bodies, extracted by brace
// matching) — the honest in-repo equivalent of counting each framework's
// application code.
//
//===----------------------------------------------------------------------===//

#include "BenchUtil.h"

#include "dsl/Driver.h"

#include <string>
#include <vector>

using namespace graphit;
using namespace graphit::bench;

namespace {

/// Non-blank, non-comment lines of a .gt source.
int countGtLines(const std::string &Path) {
  std::string Text = dsl::readFileOrDie(Path);
  int Lines = 0;
  size_t Pos = 0;
  while (Pos < Text.size()) {
    size_t End = Text.find('\n', Pos);
    if (End == std::string::npos)
      End = Text.size();
    std::string Line = Text.substr(Pos, End - Pos);
    size_t First = Line.find_first_not_of(" \t\r");
    if (First != std::string::npos && Line[First] != '%')
      ++Lines;
    Pos = End + 1;
  }
  return Lines;
}

/// Counts the lines of the function whose definition contains
/// \p Signature, from the signature line through the matching brace.
/// Returns -1 when the signature is absent.
int countFunctionLines(const std::string &Path,
                       const std::string &Signature) {
  std::string Text = dsl::readFileOrDie(Path);
  size_t At = Text.find(Signature);
  if (At == std::string::npos)
    return -1;
  size_t Open = Text.find('{', At);
  if (Open == std::string::npos)
    return -1;
  int Depth = 0, Lines = 1;
  for (size_t I = Open; I < Text.size(); ++I) {
    if (Text[I] == '{')
      ++Depth;
    else if (Text[I] == '}') {
      if (--Depth == 0)
        break;
    } else if (Text[I] == '\n') {
      ++Lines;
    }
  }
  // Count the signature lines above the brace too.
  for (size_t I = At; I < Open; ++I)
    if (Text[I] == '\n')
      ++Lines;
  return Lines;
}

std::string src(const std::string &Rel) {
  return std::string(GRAPHIT_SRC_DIR) + "/" + Rel;
}
std::string app(const std::string &Rel) {
  return std::string(GRAPHIT_APPS_DIR) + "/" + Rel;
}

} // namespace

int main() {
  banner("Table 5: lines of code per algorithm",
         "the GraphIt DSL programs are 2-4x shorter than hand-written "
         "framework implementations; A*/SetCover need longer programs "
         "because of extern functions");

  struct AlgoRow {
    const char *Name;
    std::string Gt;
    std::vector<std::pair<const char *, int>> Impls;
  };

  const std::string GapbsFile = src("baselines/GAPBSDeltaStepping.cpp");
  const std::string GaloisFile = src("baselines/GaloisApprox.cpp");
  const std::string JulienneFile = src("baselines/JulienneEngine.cpp");
  const std::string AlgoKCore = src("algorithms/KCore.cpp");
  const std::string AlgoCover = src("algorithms/SetCover.cpp");

  // GAPBS SSSP counts the shared kernel + wrapper, as the paper counts
  // the whole sssp.cc; others count their per-algorithm functions.
  int GapbsKernel = countFunctionLines(GapbsFile, "void gapbsKernel");

  std::vector<AlgoRow> Rows = {
      {"SSSP", app("sssp.gt"),
       {{"GAPBS", GapbsKernel +
                      countFunctionLines(GapbsFile, "graphit::gapbsSSSP")},
        {"Galois", countFunctionLines(GaloisFile, "void galoisKernel") +
                       countFunctionLines(GaloisFile,
                                          "graphit::galoisSSSP")},
        {"Julienne",
         countFunctionLines(JulienneFile, "OrderedStats julienneDistanceRun") +
             countFunctionLines(JulienneFile, "graphit::julienneSSSP")}}},
      {"PPSP", app("ppsp.gt"),
       {{"GAPBS", GapbsKernel +
                      countFunctionLines(GapbsFile, "graphit::gapbsPPSP")},
        {"Galois", countFunctionLines(GaloisFile, "void galoisKernel") +
                       countFunctionLines(GaloisFile,
                                          "graphit::galoisPPSP")},
        {"Julienne",
         countFunctionLines(JulienneFile, "OrderedStats julienneDistanceRun") +
             countFunctionLines(JulienneFile, "graphit::juliennePPSP")}}},
      {"A*", app("astar.gt"),
       {{"GAPBS", GapbsKernel +
                      countFunctionLines(GapbsFile, "graphit::gapbsAStar")},
        {"Galois", countFunctionLines(GaloisFile, "void galoisKernel") +
                       countFunctionLines(GaloisFile,
                                          "graphit::galoisAStar")},
        {"Julienne",
         countFunctionLines(JulienneFile, "OrderedStats julienneDistanceRun") +
             countFunctionLines(JulienneFile,
                                "graphit::julienneAStar")}}},
      {"k-core", app("kcore.gt"),
       {{"hand-C++", countFunctionLines(AlgoKCore, "KCoreResult kCoreLazy")},
        {"Julienne",
         countFunctionLines(JulienneFile, "graphit::julienneKCore")}}},
      {"SetCover", app("setcover.gt"),
       {{"hand-C++",
         countFunctionLines(AlgoCover, "graphit::approxSetCover")},
        {"Julienne",
         countFunctionLines(JulienneFile,
                            "graphit::julienneSetCover")}}},
  };

  std::printf("\n%-10s%12s", "algorithm", "GraphIt");
  std::printf("%24s\n", "hand-written frameworks");
  for (const AlgoRow &R : Rows) {
    std::printf("%-10s%12d", R.Name, countGtLines(R.Gt));
    for (const auto &[Name, Lines] : R.Impls)
      std::printf("   %s=%d", Name, Lines);
    std::printf("\n");
  }
  std::printf("\n(framework columns are this repository's baseline-proxy "
              "implementations;\n the paper counted each framework's own "
              "application code)\n");
  return 0;
}
