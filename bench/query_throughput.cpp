//===- bench/query_throughput.cpp - Batched query serving throughput ------===//
//
// Part of graphit-ordered, an independent C++ reproduction of "Optimizing
// Ordered Graph Algorithms with GraphIt" (CGO 2020). MIT License.
//
//===----------------------------------------------------------------------===//
//
// Measures the query-serving subsystem against naive per-query execution
// on a road-network routing workload: batches of point-to-point queries
// (mixed PPSP / A*) with locally-distributed endpoints, the shape a
// routing service actually sees.
//
//   naive  — one fresh pointToPointShortestPath/aStarSearch per query:
//            every query allocates and infinity-fills O(V) arrays.
//   pooled — QueryEngine::runBatch: per-worker epoch-versioned state
//            (O(touched) setup) + ALT landmark heuristic for A*.
//
// One JSON line per batch size:
//
//   {"bench": "query_throughput", "batch": N, "naive_qps": ...,
//    "pooled_qps": ..., "speedup": ..., "check": <sum of distances>}
//
// The check field must be identical between modes (and across runs) —
// distances are unique, so any divergence is a correctness bug.
//
// Knobs: GRAPHIT_SCALE (graph side multiplier), GRAPHIT_BENCH_TRIALS.
//
//===----------------------------------------------------------------------===//

#include "BenchUtil.h"

#include "algorithms/AStar.h"
#include "algorithms/PPSP.h"
#include "graph/Builder.h"
#include "graph/Generators.h"
#include "service/QueryEngine.h"
#include "support/Random.h"

#include <cstdio>
#include <thread>
#include <vector>

using namespace graphit;
using namespace graphit::bench;
using namespace graphit::service;

namespace {

struct Workload {
  Graph G;
  Count Side = 0;
  std::vector<Query> Queries;
};

/// Road grid plus a locally-distributed query mix: sources uniform,
/// targets within a bounded grid window of the source (routing queries
/// are overwhelmingly local).
Workload makeWorkload(Count MaxBatch) {
  Workload W;
  W.Side = static_cast<Count>(300 * datasetScaleFromEnv());
  W.Side = std::max<Count>(W.Side, 60);
  RoadNetwork Net = roadGrid(W.Side, W.Side, 4242);
  BuildOptions Options;
  Options.Symmetrize = true;
  W.G = GraphBuilder(Options).build(Net.NumNodes, Net.Edges,
                                    std::move(Net.Coords));

  // Fixed locality window: a routing service's typical query radius is a
  // property of the workload (trips), not of the map size — growing the
  // graph grows the *fleet* of concurrent local queries, which is exactly
  // the regime where per-query O(V)+O(E) setup dwarfs the O(touched)
  // search.
  const Count Window = std::max<Count>(W.Side / 24, 8);
  std::vector<std::pair<VertexId, VertexId>> Pairs =
      localGridQueryPairs(W.Side, W.Side, Window, MaxBatch, 777);
  for (Count I = 0; I < MaxBatch; ++I) {
    Query Q;
    Q.Kind = (I & 1) ? QueryKind::AStar : QueryKind::PPSP;
    Q.Source = Pairs[static_cast<size_t>(I)].first;
    Q.Target = Pairs[static_cast<size_t>(I)].second;
    W.Queries.push_back(Q);
  }
  return W;
}

int64_t naiveBatch(const Workload &W, const Schedule &S, Count N) {
  int64_t Check = 0;
  for (Count I = 0; I < N; ++I) {
    const Query &Q = W.Queries[static_cast<size_t>(I)];
    PPSPResult R =
        Q.Kind == QueryKind::AStar
            ? aStarSearch(W.G, Q.Source, Q.Target, S)
            : pointToPointShortestPath(W.G, Q.Source, Q.Target, S);
    if (R.Dist < kInfiniteDistance)
      Check += R.Dist;
  }
  return Check;
}

int64_t pooledBatch(QueryEngine &Engine, const Workload &W, Count N) {
  std::vector<Query> Batch(W.Queries.begin(), W.Queries.begin() + N);
  std::vector<QueryResult> Results = Engine.runBatch(Batch);
  int64_t Check = 0;
  for (const QueryResult &R : Results)
    if (R.Dist < kInfiniteDistance)
      Check += R.Dist;
  return Check;
}

} // namespace

int main() {
  constexpr Count kMaxBatch = 1024;
  Workload W = makeWorkload(kMaxBatch);

  Schedule S;
  // Δ tuned for *local point-to-point* queries, not full-graph SSSP: the
  // early-exit granularity is one bucket = Δ distance units, so the §6.2
  // road Δ of 8192 would force every local query to settle an ~8192-radius
  // ball before it can stop. Per-query schedule selection is exactly the
  // point of the serving API.
  S.configApplyPriorityUpdateDelta(1024);

  QueryEngine::Options Opts;
  Opts.DefaultSchedule = S;
  Opts.NumLandmarks = 8;
  Opts.NumWorkers =
      std::max(1u, std::thread::hardware_concurrency());
  QueryEngine Engine(W.G, Opts); // landmark build cost paid once, up front

  std::fprintf(stderr,
               "# road %lldx%lld (%lld nodes), %d workers, %d landmarks\n",
               (long long)W.Side, (long long)W.Side,
               (long long)W.G.numNodes(), Engine.numWorkers(),
               Opts.NumLandmarks);

  for (Count Batch : {Count{1}, Count{4}, Count{16}, Count{64}, Count{256},
                      Count{1024}}) {
    int64_t NaiveCheck = 0, PooledCheck = 0;
    double NaiveT =
        timeBest([&] { NaiveCheck = naiveBatch(W, S, Batch); });
    double PooledT =
        timeBest([&] { PooledCheck = pooledBatch(Engine, W, Batch); });
    if (NaiveCheck != PooledCheck) {
      std::fprintf(stderr, "!! mismatch at batch %lld: %lld vs %lld\n",
                   (long long)Batch, (long long)NaiveCheck,
                   (long long)PooledCheck);
      return 1;
    }
    std::printf("{\"bench\": \"query_throughput\", \"batch\": %lld, "
                "\"naive_qps\": %.1f, \"pooled_qps\": %.1f, "
                "\"speedup\": %.2f, \"check\": %lld}\n",
                (long long)Batch, Batch / NaiveT, Batch / PooledT,
                NaiveT / PooledT, (long long)PooledCheck);
    std::fflush(stdout);
  }

  // Deadline-overhead guard: queries carrying a deadline that never fires
  // must cost the same as queries without one — the cancellation hook is
  // a relaxed per-round flag check, and it is compiled out entirely when
  // no token is attached. Gated by scripts/check_bench.py against
  // BENCH_deadline.json at a 2% bound (its own --threshold, far tighter
  // than the cross-run perf gate, because off and on are measured
  // back-to-back in the SAME process on the SAME workload).
  {
    constexpr Count kGuardBatch = 256;
    std::vector<Query> On(W.Queries.begin(), W.Queries.begin() + kGuardBatch);
    for (Query &Q : On)
      Q.DeadlineMicros = 10LL * 1000 * 1000; // 10 s: can never fire here
    int64_t OffCheck = 0, OnCheck = 0;
    double OffT = timeBest([&] { OffCheck = pooledBatch(Engine, W, kGuardBatch); });
    double OnT = timeBest([&] {
      int64_t Check = 0;
      for (const QueryResult &R : Engine.runBatch(On)) {
        if (R.Status != QueryStatus::Ok) {
          std::fprintf(stderr, "!! 10s deadline fired on a local query\n");
          std::exit(1);
        }
        if (R.Dist < kInfiniteDistance)
          Check += R.Dist;
      }
      OnCheck = Check;
    });
    if (OnCheck != OffCheck) {
      std::fprintf(stderr, "!! deadline-on check mismatch: %lld vs %lld\n",
                   (long long)OnCheck, (long long)OffCheck);
      return 1;
    }
    std::printf("{\"bench\": \"deadline_overhead\", \"batch\": %lld, "
                "\"off_qps\": %.1f, \"on_qps\": %.1f, \"speedup\": %.3f, "
                "\"check\": %lld}\n",
                (long long)kGuardBatch, kGuardBatch / OffT,
                kGuardBatch / OnT, OffT / OnT, (long long)OnCheck);
    std::fflush(stdout);
  }
  return 0;
}
