//===- bench/reorder_sweep.cpp - Layout/ordering sweep --------------------===//
//
// Part of graphit-ordered, an independent C++ reproduction of "Optimizing
// Ordered Graph Algorithms with GraphIt" (CGO 2020). MIT License.
//
//===----------------------------------------------------------------------===//
//
// Measures every lightweight ordering (graph/Reorder.h) against the
// perf_smoke workload shapes and emits one JSON line per (workload,
// ordering):
//
//   {"bench": "<name>", "ordering": "<kind>", "build_s": <reorder cost>,
//    "seconds": <best solve>, "check": <int64>}
//
// `build_s` is the one-time reorder + CSR-rebuild cost, kept separate so
// the perf gate never conflates layout cost with steady-state solve speed.
// Every run is verified element-by-element against the identity layout in
// original-id space before the line is emitted — a layout "speedup" that
// changes answers aborts the bench.
//
//===----------------------------------------------------------------------===//

#include "BenchUtil.h"

#include "algorithms/SSSP.h"
#include "autotuner/Autotuner.h"
#include "graph/Builder.h"
#include "graph/Generators.h"
#include "graph/Reorder.h"
#include "support/Abort.h"
#include "support/Timer.h"

#include <cstdio>
#include <map>
#include <string>
#include <vector>

using namespace graphit;
using namespace graphit::bench;

namespace {

Graph rmatGraph() {
  std::vector<Edge> Edges = rmatEdges(16, 16, 12345);
  assignRandomWeights(Edges, 1, 256, 999);
  return GraphBuilder().build(Count{1} << 16, Edges);
}

Graph roadGraph() {
  RoadNetwork Net = roadGrid(600, 600, 4242);
  BuildOptions Options;
  Options.Symmetrize = true;
  return GraphBuilder(Options).build(Net.NumNodes, Net.Edges);
}

/// Runs one workload under every ordering, checking each layout's
/// distances against the identity layout in original-id space.
void sweep(const char *Name, const Graph &G, VertexId Source,
           const Schedule &S) {
  // Identity layout first: the reference distances.
  std::vector<Priority> Reference;
  {
    int64_t Check = 0;
    double T = timeBest([&] {
      SSSPResult R = deltaSteppingSSSP(G, Source, S);
      Check = resultChecksum(R.Dist);
      Reference = std::move(R.Dist);
    });
    emitBench(Name, T, Check, /*BuildSeconds=*/0.0, "none");
  }

  for (ReorderKind Kind : allReorderKinds()) {
    if (Kind == ReorderKind::None)
      continue;
    Timer BuildClock;
    VertexMapping Map;
    Graph P = reorderGraph(G, Kind, &Map);
    double BuildSeconds = BuildClock.seconds();

    VertexId PSource = Map.toInternal(Source);
    std::vector<Priority> Dist;
    double T = timeBest([&] {
      SSSPResult R = deltaSteppingSSSP(P, PSource, S);
      Dist = std::move(R.Dist);
    });

    // Bit-identical in original-id space, element by element.
    int64_t Check = 0;
    for (Count V = 0; V < G.numNodes(); ++V) {
      Priority D = Dist[Map.toInternal(static_cast<VertexId>(V))];
      if (D != Reference[V])
        fatalError("reorder_sweep: distances differ in original-id space");
      if (D < kInfiniteDistance)
        Check += D;
    }
    emitBench(Name, T, Check, BuildSeconds, reorderKindName(Kind));
  }
}

/// {ordering × schedule} autotuning (§5.3 extended with the layout
/// dimension): one compact search per workload, reporting the chosen
/// layout. Permuted graphs are built once per ordering and cached — many
/// sampled schedules share each layout.
void tuneLayout(const char *Name, const Graph &G, VertexId Source) {
  std::map<ReorderKind, std::pair<Graph, VertexMapping>> Layouts;
  auto LayoutFor = [&](ReorderKind Kind) -> std::pair<Graph, VertexMapping> & {
    auto It = Layouts.find(Kind);
    if (It == Layouts.end()) {
      VertexMapping Map;
      Graph P = Kind == ReorderKind::None ? G : reorderGraph(G, Kind, &Map);
      if (Kind == ReorderKind::None)
        Map = VertexMapping(G.numNodes());
      It = Layouts.emplace(Kind, std::make_pair(std::move(P), std::move(Map)))
               .first;
    }
    return It->second;
  };

  // A compact slice of distanceLayoutSpace(): the full space's worst
  // schedules (Δ=1 lazy on a road graph) run for minutes each, which a
  // smoke bench cannot afford — the time budget is only checked *between*
  // evaluations. The layout dimension stays complete.
  TuningSpace Space;
  Space.Strategies = {UpdateStrategy::EagerWithFusion,
                      UpdateStrategy::EagerNoFusion, UpdateStrategy::Lazy};
  Space.Deltas = {1024, 4096, 8192, 32768};
  Space.FusionThresholds = {1000};
  Space.Directions = {Direction::SparsePush};
  Space.NumBucketsChoices = {128};
  Space.Orderings = {ReorderKind::None, ReorderKind::Degree,
                     ReorderKind::Bfs, ReorderKind::Push};
  TuningOptions Opts;
  Opts.MaxTrials = bench::envInt("GRAPHIT_TUNE_TRIALS", 16);
  Opts.TimeBudgetSeconds = 20.0;
  TuningResult R = autotuneLayout(
      Space,
      [&](ReorderKind Kind, const Schedule &S) {
        std::pair<Graph, VertexMapping> &L = LayoutFor(Kind);
        Timer Clock;
        deltaSteppingSSSP(L.first, L.second.toInternal(Source), S);
        return Clock.seconds();
      },
      Opts);

  // The winning layout goes in "chosen" — a *display* field, not part of
  // the perf-gate workload key: the winner can legitimately flip between
  // runs when two layouts are within noise, and the gate must keep
  // comparing the bench's best seconds either way.
  std::printf("{\"bench\": \"%s\", \"chosen\": \"%s\", "
              "\"seconds\": %.6f, \"check\": 0}\n",
              Name, reorderKindName(R.BestOrdering), R.BestSeconds);
  std::fprintf(stderr, "# %s: best ordering=%s schedule=%s (%.4fs)\n", Name,
               reorderKindName(R.BestOrdering), R.Best.toString().c_str(),
               R.BestSeconds);
}

} // namespace

int main() {
  {
    Graph G = roadGraph();
    Schedule S;
    S.configApplyPriorityUpdateDelta(8192);
    sweep("reorder_sssp_road_eager", G, 0, S);

    Schedule Lazy;
    Lazy.configApplyPriorityUpdate("lazy").configApplyPriorityUpdateDelta(
        8192);
    sweep("reorder_sssp_road_lazy", G, 0, Lazy);
  }
  {
    Graph G = rmatGraph();
    Schedule S;
    S.configApplyPriorityUpdateDelta(2);
    sweep("reorder_sssp_rmat_eager", G, 3, S);
  }

  // The autotuner's {ordering × schedule} search, one line per workload
  // with the chosen layout in the "ordering" field. Smaller graphs than
  // the sweep: a tune is MaxTrials solver runs. Opt-out for quick local
  // runs: GRAPHIT_TUNE_TRIALS=1.
  {
    RoadNetwork Net = roadGrid(300, 300, 4242);
    BuildOptions Options;
    Options.Symmetrize = true;
    Graph Road = GraphBuilder(Options).build(Net.NumNodes, Net.Edges);
    tuneLayout("layout_autotune_road", Road, 0);

    std::vector<Edge> Edges = rmatEdges(15, 16, 12345);
    assignRandomWeights(Edges, 1, 256, 999);
    Graph Rmat = GraphBuilder().build(Count{1} << 15, Edges);
    tuneLayout("layout_autotune_rmat", Rmat, 3);
  }
  return 0;
}
