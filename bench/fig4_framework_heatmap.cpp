//===- bench/fig4_framework_heatmap.cpp - Figure 4 ------------------------===//
//
// Part of graphit-ordered, an independent C++ reproduction of "Optimizing
// Ordered Graph Algorithms with GraphIt" (CGO 2020). MIT License.
//
//===----------------------------------------------------------------------===//
//
// Figure 4: heatmap of per-framework slowdowns relative to the fastest
// framework, for SSSP, PPSP, k-core, and SetCover on LJ, TW, RD. A value
// of 1.00 means "fastest"; gray cells (--) mean unsupported.
//
//===----------------------------------------------------------------------===//

#include "BenchUtil.h"

#include "algorithms/KCore.h"
#include "algorithms/PPSP.h"
#include "algorithms/SetCover.h"
#include "algorithms/SSSP.h"
#include "baselines/GaloisApprox.h"
#include "baselines/JulienneEngine.h"

#include <map>

using namespace graphit;
using namespace graphit::bench;

namespace {

struct Cell {
  double GraphIt = -1, Julienne = -1, Galois = -1;
};

int64_t bestDelta(DatasetId Id) { return isRoadNetwork(Id) ? 8192 : 2; }

} // namespace

int main() {
  banner("Figure 4: slowdown heatmap vs fastest framework",
         "GraphIt is 1.0 nearly everywhere; Julienne up to ~17x slower "
         "on road SSSP/PPSP but close on k-core/SetCover; Galois close "
         "on SSSP, unsupported for k-core/SetCover");

  std::vector<DatasetId> Sets = {DatasetId::LJ, DatasetId::TW,
                                 DatasetId::RD};
  std::vector<std::string> Algos = {"SSSP", "PPSP", "k-core", "SetCover"};
  // Results[algo][dataset]
  std::map<std::string, std::map<std::string, Cell>> Results;

  for (DatasetId Id : Sets) {
    const char *N = datasetName(Id);
    int64_t Delta = bestDelta(Id);
    {
      Graph G = makeDataset(Id, DatasetVariant::Directed);
      std::vector<VertexId> Sources = pickSources(G, numSources(), 5);
      std::vector<VertexId> Targets =
          pickSources(G, numSources(), 5 ^ 0xF);
      Schedule S;
      S.configApplyPriorityUpdateDelta(Delta);

      Cell &CSSSP = Results["SSSP"][N];
      CSSSP.GraphIt = CSSSP.Julienne = CSSSP.Galois = 0;
      Cell &CPPSP = Results["PPSP"][N];
      CPPSP.GraphIt = CPPSP.Julienne = CPPSP.Galois = 0;
      for (size_t I = 0; I < Sources.size(); ++I) {
        VertexId A = Sources[I], B = Targets[I];
        CSSSP.GraphIt +=
            timeBest([&] { deltaSteppingSSSP(G, A, S); });
        CSSSP.Julienne += timeBest([&] { julienneSSSP(G, A, Delta); });
        CSSSP.Galois += timeBest([&] { galoisSSSP(G, A, Delta); });
        CPPSP.GraphIt += timeBest(
            [&] { pointToPointShortestPath(G, A, B, S); });
        CPPSP.Julienne += timeBest([&] { juliennePPSP(G, A, B, Delta); });
        CPPSP.Galois += timeBest([&] { galoisPPSP(G, A, B, Delta); });
      }
    }
    {
      Graph G = makeDataset(Id, DatasetVariant::Symmetric);
      Schedule S;
      S.configApplyPriorityUpdate("lazy_constant_sum");
      Cell &CK = Results["k-core"][N];
      CK.GraphIt = timeBest([&] { kCoreDecomposition(G, S); });
      CK.Julienne = timeBest([&] { julienneKCore(G); });
      Cell &CS = Results["SetCover"][N];
      CS.GraphIt = timeBest([&] { approxSetCover(G, Schedule()); });
      CS.Julienne = timeBest([&] { julienneSetCover(G); });
    }
  }

  // Normalize each (algo, dataset) cell by the fastest framework.
  for (const char *Framework : {"GraphIt", "Julienne", "Galois"}) {
    std::printf("\n-- %s slowdown vs fastest --\n", Framework);
    cellHeader("graph");
    for (const std::string &A : Algos)
      std::printf("%12s", A.c_str());
    endRow();
    for (DatasetId Id : Sets) {
      const char *N = datasetName(Id);
      cellHeader(N);
      for (const std::string &A : Algos) {
        const Cell &C = Results[A][N];
        double Fastest = 1e30;
        for (double T : {C.GraphIt, C.Julienne, C.Galois})
          if (T >= 0)
            Fastest = std::min(Fastest, T);
        double Mine = std::string(Framework) == "GraphIt" ? C.GraphIt
                      : std::string(Framework) == "Julienne"
                          ? C.Julienne
                          : C.Galois;
        cellRatio(Mine < 0 ? -1 : Mine / Fastest);
      }
      endRow();
    }
  }
  return 0;
}
