//===- bench/BenchUtil.h - Shared benchmark harness helpers -----*- C++ -*-===//
//
// Part of graphit-ordered, an independent C++ reproduction of "Optimizing
// Ordered Graph Algorithms with GraphIt" (CGO 2020). MIT License.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Small helpers shared by the per-table/per-figure benchmark binaries:
/// environment knobs, timing, and table formatting. Every binary prints
/// the paper row/series it regenerates plus the paper's qualitative
/// expectation, so `bench_output.txt` reads side-by-side with the paper.
///
/// Environment knobs:
///   GRAPHIT_SCALE          dataset scale multiplier (default 1.0)
///   GRAPHIT_BENCH_SOURCES  sources/queries averaged per cell (default 2)
///   GRAPHIT_BENCH_TRIALS   repetitions per measurement (default 1)
///
//===----------------------------------------------------------------------===//

#ifndef GRAPHIT_BENCH_BENCHUTIL_H
#define GRAPHIT_BENCH_BENCHUTIL_H

#include "graph/Datasets.h"
#include "support/Timer.h"

#include <algorithm>
#include <cstdio>
#include <cstdlib>
#include <functional>
#include <string>
#include <vector>

namespace graphit {
namespace bench {

inline int envInt(const char *Name, int Default) {
  const char *V = std::getenv(Name);
  return V ? std::max(1, std::atoi(V)) : Default;
}

inline int numSources() { return envInt("GRAPHIT_BENCH_SOURCES", 2); }
inline int numTrials() { return envInt("GRAPHIT_BENCH_TRIALS", 1); }

/// Times \p Fn `numTrials()` times; returns the minimum (the conventional
/// benchmark statistic for wall-clock noise).
template <typename Fn> double timeBest(Fn &&Body) {
  double Best = 1e30;
  for (int T = 0; T < numTrials(); ++T) {
    Timer Clock;
    Body();
    Best = std::min(Best, Clock.seconds());
  }
  return Best;
}

/// Sum of finite entries of a distance/coreness vector — the standard
/// result checksum the JSON benches emit (engine- and thread-invariant).
inline int64_t resultChecksum(const std::vector<Priority> &V) {
  int64_t Sum = 0;
  for (Priority P : V)
    if (P < kInfiniteDistance)
      Sum += P;
  return Sum;
}

/// Emits the standard JSON-lines bench record consumed by
/// scripts/check_bench.py. \p SolveSeconds is steady-state solve time only;
/// \p BuildSeconds (emitted when >= 0) is the one-time graph build/reorder
/// cost, kept in a separate field so the perf gate never conflates layout
/// cost with query speed. \p Ordering (emitted when non-null) names the
/// vertex layout and is surfaced as its own column in the gate's summary
/// table.
inline void emitBench(const std::string &Name, double SolveSeconds,
                      int64_t Check, double BuildSeconds = -1.0,
                      const char *Ordering = nullptr) {
  std::printf("{\"bench\": \"%s\"", Name.c_str());
  if (Ordering)
    std::printf(", \"ordering\": \"%s\"", Ordering);
  if (BuildSeconds >= 0)
    std::printf(", \"build_s\": %.6f", BuildSeconds);
  std::printf(", \"seconds\": %.6f, \"check\": %lld}\n", SolveSeconds,
              static_cast<long long>(Check));
}

/// Prints the standard benchmark banner.
inline void banner(const char *Experiment, const char *PaperClaim) {
  std::printf("==============================================================="
              "=\n");
  std::printf("%s\n", Experiment);
  std::printf("paper expectation: %s\n", PaperClaim);
  std::printf("(synthetic stand-in datasets; shapes, not absolute times, "
              "are comparable)\n");
  std::printf("==============================================================="
              "=\n");
}

/// Fixed-width cell helpers.
inline void cellHeader(const char *Name) { std::printf("%-12s", Name); }
inline void cellTime(double Seconds) {
  if (Seconds < 0)
    std::printf("%12s", "--");
  else
    std::printf("%12.4f", Seconds);
}
inline void cellRatio(double R) {
  if (R < 0)
    std::printf("%12s", "--");
  else
    std::printf("%12.2f", R);
}
inline void endRow() { std::printf("\n"); }

} // namespace bench
} // namespace graphit

#endif // GRAPHIT_BENCH_BENCHUTIL_H
