//===- bench/fig1_ordered_vs_unordered.cpp - Figure 1 ---------------------===//
//
// Part of graphit-ordered, an independent C++ reproduction of "Optimizing
// Ordered Graph Algorithms with GraphIt" (CGO 2020). MIT License.
//
//===----------------------------------------------------------------------===//
//
// Figure 1: speedup of ordered algorithms over their unordered
// counterparts (SSSP: Δ-stepping vs Bellman-Ford; k-core: bucketed
// peeling vs scan-based peeling), on a social graph, a skewed social
// graph, and a road network.
//
//===----------------------------------------------------------------------===//

#include "BenchUtil.h"

#include "algorithms/BellmanFord.h"
#include "algorithms/KCore.h"
#include "algorithms/SSSP.h"

using namespace graphit;
using namespace graphit::bench;

int main() {
  banner("Figure 1: ordered vs unordered speedup",
         "ordered wins everywhere; dramatically (100x+) on the "
         "high-diameter road network for SSSP");

  std::vector<DatasetId> Sets = {DatasetId::LJ, DatasetId::TW,
                                 DatasetId::RD};

  std::printf("\n-- SSSP: delta-stepping (ordered) vs Bellman-Ford "
              "(unordered) --\n");
  cellHeader("graph");
  cellHeader("");
  std::printf("%12s%12s%12s\n", "ordered(s)", "unordered(s)", "speedup");
  for (DatasetId Id : Sets) {
    Graph G = makeDataset(Id, DatasetVariant::Directed);
    Schedule S;
    S.configApplyPriorityUpdateDelta(isRoadNetwork(Id) ? 8192 : 2);
    std::vector<VertexId> Sources = pickSources(G, numSources(), 42);

    double Ordered = 0, Unordered = 0;
    for (VertexId Src : Sources) {
      Ordered += timeBest(
          [&] { deltaSteppingSSSP(G, Src, S); });
      Unordered += timeBest([&] { bellmanFordSSSP(G, Src); });
    }
    Ordered /= Sources.size();
    Unordered /= Sources.size();
    cellHeader(datasetName(Id));
    cellHeader("");
    cellTime(Ordered);
    cellTime(Unordered);
    cellRatio(Unordered / Ordered);
    endRow();
  }

  std::printf("\n-- k-core: bucketed peeling (ordered) vs scan peeling "
              "(unordered) --\n");
  cellHeader("graph");
  cellHeader("");
  std::printf("%12s%12s%12s\n", "ordered(s)", "unordered(s)", "speedup");
  for (DatasetId Id : Sets) {
    Graph G = makeDataset(Id, DatasetVariant::Symmetric);
    Schedule S;
    S.configApplyPriorityUpdate("lazy_constant_sum");
    double Ordered = timeBest([&] { kCoreDecomposition(G, S); });
    double Unordered = timeBest([&] { kCoreUnordered(G); });
    cellHeader(datasetName(Id));
    cellHeader("");
    cellTime(Ordered);
    cellTime(Unordered);
    cellRatio(Unordered / Ordered);
    endRow();
  }
  return 0;
}
