#!/usr/bin/env python3
"""Docs gate: link integrity + serving-options drift guard.

Two checks, both hard failures (run as the `docs_check` ctest entry and
in the `docs` CI job):

1. **Link check.** Every relative markdown link in README.md and
   docs/**.md must resolve to an existing file, and every fragment
   (`file.md#anchor` or in-page `#anchor`) must match a heading in the
   target file under GitHub's anchor rules (lowercase, punctuation
   stripped, spaces to hyphens). External links (http/https/mailto) are
   not fetched — CI must not depend on the network.

2. **Options drift guard.** docs/serving.md documents every
   `Options` field of the serving tier in per-struct tables whose first
   column is the backticked field name, under headings naming the
   struct (e.g. `### QueryEngine::Options`). The guard parses the real
   structs out of the headers and fails in BOTH directions: a header
   field missing from the doc table (undocumented option), or a doc row
   naming a field the struct no longer has (stale doc). Renaming or
   adding an option without touching docs/serving.md fails CI.

Exit status: 0 = clean, 1 = findings, 2 = usage/environment error.

Usage:
  check_docs.py [--root REPO_ROOT]
"""

import argparse
import os
import re
import sys

# Struct -> (header path, doc heading fragment). A doc heading matches if
# it contains the struct name (so "### `BasicQueryEngine::Options`" works).
OPTION_STRUCTS = {
    "BasicQueryEngine::Options": "src/service/QueryEngine.h",
    "SnapshotStore::Options": "src/service/SnapshotStore.h",
    "ShardedSnapshotStore::Options": "src/service/SnapshotStore.h",
}

SERVING_DOC = "docs/serving.md"
LINK_ROOTS = ["README.md", "docs"]

LINK_RE = re.compile(r"(?<!\!)\[[^\]]*\]\(([^)\s]+)\)")
HEADING_RE = re.compile(r"^#{1,6}\s+(.*)$")
FIELD_RE = re.compile(
    r"^\s+(?:[A-Za-z_][A-Za-z0-9_:<>\s,\*]*?)\s([A-Z][A-Za-z0-9]*)\s*(?:=[^;]*)?;"
)


def github_anchor(heading):
    """GitHub's heading -> fragment rule: strip markup, lowercase, drop
    punctuation, spaces to hyphens. Underscores are word characters on
    GitHub (`BENCH_service.json` -> `bench_servicejson`), so only
    backtick/star markup is stripped."""
    text = re.sub(r"[`*]", "", heading).strip()
    text = text.lower()
    text = re.sub(r"[^\w\- ]", "", text)
    return text.replace(" ", "-")


def markdown_files(root):
    out = []
    for entry in LINK_ROOTS:
        path = os.path.join(root, entry)
        if os.path.isfile(path):
            out.append(path)
        elif os.path.isdir(path):
            for dirpath, _, names in os.walk(path):
                out.extend(os.path.join(dirpath, n) for n in sorted(names)
                           if n.endswith(".md"))
    return out


def anchors_of(path, cache):
    if path not in cache:
        anchors = set()
        with open(path) as f:
            in_fence = False
            for line in f:
                if line.lstrip().startswith("```"):
                    in_fence = not in_fence
                    continue
                if in_fence:
                    continue
                m = HEADING_RE.match(line)
                if m:
                    anchors.add(github_anchor(m.group(1)))
        cache[path] = anchors
    return cache[path]


def check_links(root):
    """Returns a list of 'file:line: problem' strings."""
    problems = []
    cache = {}
    for md in markdown_files(root):
        with open(md) as f:
            in_fence = False
            for lineno, line in enumerate(f, 1):
                if line.lstrip().startswith("```"):
                    in_fence = not in_fence
                    continue
                if in_fence:
                    continue
                for target in LINK_RE.findall(line):
                    if target.startswith(("http://", "https://", "mailto:")):
                        continue
                    rel = os.path.relpath(md, root)
                    path_part, _, frag = target.partition("#")
                    if path_part:
                        dest = os.path.normpath(
                            os.path.join(os.path.dirname(md), path_part))
                        if os.path.relpath(dest, root).startswith(".."):
                            # Escapes the checkout (e.g. the CI badge's
                            # ../../actions/... path, which only exists on
                            # the forge) — nothing on disk to validate.
                            continue
                        if not os.path.exists(dest):
                            problems.append(
                                f"{rel}:{lineno}: broken link: {target}")
                            continue
                    else:
                        dest = md  # in-page fragment
                    if frag and dest.endswith(".md"):
                        if frag not in anchors_of(dest, cache):
                            problems.append(
                                f"{rel}:{lineno}: missing anchor: {target}")
    return problems


def header_fields(root, struct):
    """Fields of `struct` parsed from its header: the `struct Options`
    block inside the named class."""
    cls, _, inner = struct.partition("::")
    path = os.path.join(root, OPTION_STRUCTS[struct])
    fields = []
    with open(path) as f:
        text = f.read()
    cls_m = re.search(rf"^class {re.escape(cls)}\b", text, re.M)
    if not cls_m:
        raise RuntimeError(f"{path}: class {cls} not found")
    sub = text[cls_m.start():]
    opt_m = re.search(rf"struct {re.escape(inner)}\s*{{", sub)
    if not opt_m:
        raise RuntimeError(f"{path}: struct {struct} not found")
    depth = 0
    for line in sub[opt_m.start():].splitlines():
        depth += line.count("{") - line.count("}")
        if depth <= 0 and "{" not in line:
            break
        m = FIELD_RE.match(line)
        # Skip the GCC-12 `Options() {}` workaround and method-looking
        # lines; fields always end in `;` and start with a type.
        if m and "(" not in line.split(m.group(1))[0]:
            fields.append(m.group(1))
    if not fields:
        raise RuntimeError(f"{path}: no fields parsed for {struct}")
    return fields


def doc_tables(root):
    """Parses docs/serving.md into {struct: [documented field names]},
    keyed by the nearest preceding heading that names an Options struct."""
    path = os.path.join(root, SERVING_DOC)
    tables = {}
    current = None
    with open(path) as f:
        for line in f:
            m = HEADING_RE.match(line)
            if m:
                heading = m.group(1).replace("`", "")
                # Longest name first: "SnapshotStore::Options" is a
                # substring of "ShardedSnapshotStore::Options".
                current = next((s for s in sorted(OPTION_STRUCTS,
                                                  key=len, reverse=True)
                                if s in heading), None)
                continue
            if current and line.lstrip().startswith("|"):
                cell = line.split("|")[1].strip()
                fm = re.fullmatch(r"`([A-Za-z][A-Za-z0-9]*)`", cell)
                if fm:
                    tables.setdefault(current, []).append(fm.group(1))
    return tables


def check_options_drift(root):
    problems = []
    documented = doc_tables(root)
    for struct in OPTION_STRUCTS:
        try:
            real = header_fields(root, struct)
        except RuntimeError as e:
            problems.append(str(e))
            continue
        doc = documented.get(struct, [])
        if not doc:
            problems.append(f"{SERVING_DOC}: no options table found for "
                            f"{struct}")
            continue
        for f in real:
            if f not in doc:
                problems.append(f"{SERVING_DOC}: {struct}::{f} exists in "
                                f"{OPTION_STRUCTS[struct]} but is not in "
                                f"the doc table")
        for f in doc:
            if f not in real:
                problems.append(f"{SERVING_DOC}: documents {struct}::{f}, "
                                f"which {OPTION_STRUCTS[struct]} does not "
                                f"have")
    return problems


def main():
    ap = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    ap.add_argument("--root", default=None,
                    help="repository root (default: the script's parent)")
    args = ap.parse_args()
    root = args.root or os.path.dirname(
        os.path.dirname(os.path.abspath(__file__)))
    if not os.path.isfile(os.path.join(root, "README.md")):
        print(f"check_docs: {root} does not look like the repo root",
              file=sys.stderr)
        return 2

    problems = check_links(root) + check_options_drift(root)
    for p in problems:
        print(p)
    n_files = len(markdown_files(root))
    if problems:
        print(f"check_docs: {len(problems)} problem(s) across {n_files} "
              f"markdown file(s)", file=sys.stderr)
        return 1
    print(f"check_docs: OK ({n_files} markdown files, "
          f"{len(OPTION_STRUCTS)} options structs in sync)")
    return 0


if __name__ == "__main__":
    sys.exit(main())
