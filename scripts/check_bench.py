#!/usr/bin/env python3
"""Perf regression gate for the JSON-lines benchmarks.

Compares a freshly produced bench output (one JSON object per line, as
emitted by bench_perf_smoke / bench_query_throughput /
bench_update_throughput) against a committed baseline and fails on
regressions beyond a threshold.

Design choices, tuned for noisy CI boxes:

  * every line is reduced to ONE canonical metric (seconds-style: lower is
    better; qps/speedup-style: higher is better — see METRIC_PRIORITY);
  * duplicate keys within a file (e.g. the same bench run N times and the
    outputs concatenated) are collapsed to the best observation, so the
    comparison is best-of-N on both sides;
  * benches present on only one side warn instead of failing (adding or
    retiring a workload must not break the gate);
  * a baseline line may carry "tolerance": <float> — a per-bench override
    of the global threshold (the larger of the two wins). Layout/reorder
    benches are noisier than micro benches and gate at a looser bound
    without loosening everything else;
  * the "ordering" field (vertex layout of reordered workload variants) is
    part of the workload key and surfaced as its own summary column; the
    "chosen" field (an autotuner's winning layout) shows in the same
    column but is NOT part of the key — the winner may flip between runs
    without breaking the comparison;
  * the comparison table is written to $GITHUB_STEP_SUMMARY when set.

Exit status: 0 = no regression (or --warn-only), 1 = regression, 2 = usage.

Usage:
  check_bench.py --baseline BENCH_smoke.json --current perf_smoke.json \
                 [--threshold 0.15] [--name perf-smoke] [--warn-only]
"""

import argparse
import json
import os
import sys

# First matching field wins; direction 'lower' or 'higher' is what counts
# as better.
METRIC_PRIORITY = [
    ("seconds", "lower"),
    ("repair_s", "lower"),
    ("speedup", "higher"),
    ("pooled_qps", "higher"),
    ("naive_qps", "higher"),
    ("achieved_qps", "higher"),
    ("p99_us", "lower"),
    ("hit_rate", "higher"),
]

# Fields that identify a workload variant within one bench ("ordering" is
# the vertex layout of reordered variants; "window"/"mode" distinguish the
# service bench's batching sweep points and open-loop operating points;
# "class" splits an operating point into its per-importance-class SLO
# lines).
KEY_FIELDS = ["bench", "ordering", "batch", "updates", "threads", "scale",
              "window", "mode", "class"]


def parse_lines(path):
    """Returns ({key: (metric_name, direction, best_value)},
                {key: max_tolerance}, {key: display_ordering})."""
    out = {}
    tolerances = {}
    display = {}
    with open(path) as f:
        for lineno, line in enumerate(f, 1):
            line = line.strip()
            if not line or line.startswith("#"):
                continue
            try:
                rec = json.loads(line)
            except json.JSONDecodeError:
                print(f"{path}:{lineno}: skipping unparsable line",
                      file=sys.stderr)
                continue
            metric = next(((m, d) for m, d in METRIC_PRIORITY if m in rec),
                          None)
            if metric is None:
                continue
            name, direction = metric
            key = tuple((k, rec[k]) for k in KEY_FIELDS if k in rec)
            value = float(rec[name])
            if key in out:
                _, _, prev = out[key]
                value = min(prev, value) if direction == "lower" \
                    else max(prev, value)
            out[key] = (name, direction, value)
            if "tolerance" in rec:
                tolerances[key] = max(tolerances.get(key, 0.0),
                                      float(rec["tolerance"]))
            if "ordering" in rec or "chosen" in rec:
                display[key] = rec.get("ordering", rec.get("chosen"))
    return out, tolerances, display


def fmt_key(key):
    """Table label; the layout has its own column."""
    return " ".join(f"{v}" if k == "bench" else f"{k}={v}"
                    for k, v in key if k != "ordering")


def fail_label(key, threshold):
    """Failure-message label: the FULL key (a reordered variant must be
    distinguishable from its identity bench) plus the effective gate."""
    full = " ".join(f"{v}" if k == "bench" else f"{k}={v}" for k, v in key)
    return f"{full} (>{threshold:.0%})"


def main():
    ap = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    ap.add_argument("--baseline", required=True)
    ap.add_argument("--current", required=True)
    ap.add_argument("--threshold", type=float,
                    default=float(os.environ.get(
                        "GRAPHIT_PERF_GATE_THRESHOLD", "0.15")),
                    help="max allowed relative regression (default 0.15)")
    ap.add_argument("--name", default=None,
                    help="label for the summary table")
    ap.add_argument("--warn-only", action="store_true",
                    help="report regressions without failing")
    args = ap.parse_args()

    try:
        base, base_tol, base_disp = parse_lines(args.baseline)
        cur, _, cur_disp = parse_lines(args.current)
    except OSError as e:
        print(f"check_bench: {e}", file=sys.stderr)
        return 2

    def ordering_of(key):
        return cur_disp.get(key, base_disp.get(key, "—"))

    label = args.name or os.path.basename(args.current)
    rows = []
    regressions = []
    for key, (metric, direction, b) in sorted(base.items()):
        if key not in cur:
            rows.append((fmt_key(key), ordering_of(key), metric, b, None,
                         None, "missing"))
            continue
        _, _, c = cur[key]
        # Relative regression: how much worse is current than baseline.
        if b <= 0 or c <= 0:
            change = 0.0
        elif direction == "lower":
            change = c / b - 1.0
        else:
            change = b / c - 1.0
        status = "ok"
        threshold = max(args.threshold, base_tol.get(key, 0.0))
        if change > threshold:
            status = "REGRESSION"
            regressions.append(fail_label(key, threshold))
        rows.append((fmt_key(key), ordering_of(key), metric, b, c, change,
                     status))
    for key in sorted(set(cur) - set(base)):
        metric, _, c = cur[key]
        rows.append((fmt_key(key), ordering_of(key), metric, None, c, None,
                     "new"))

    header = (f"### Perf gate: {label} "
              f"(threshold {args.threshold:.0%})")
    lines = [header, "",
             "| workload | ordering | metric | baseline | current "
             "| worse by | status |",
             "|---|---|---|---|---|---|---|"]
    for key, ordering, metric, b, c, change, status in rows:
        bs = f"{b:.4f}" if b is not None else "—"
        cs = f"{c:.4f}" if c is not None else "—"
        ch = f"{change:+.1%}" if change is not None else "—"
        mark = {"ok": "✅", "REGRESSION": "❌",
                "missing": "⚠️ missing", "new": "🆕"}[status]
        lines.append(f"| {key} | {ordering} | {metric} | {bs} | {cs} "
                     f"| {ch} | {mark} |")
    if regressions and args.warn_only:
        lines.append("")
        lines.append("_warn-only: regressions reported but not failing._")
    table = "\n".join(lines)

    print(table)
    summary = os.environ.get("GITHUB_STEP_SUMMARY")
    if summary:
        with open(summary, "a") as f:
            f.write(table + "\n\n")

    if regressions and not args.warn_only:
        print(f"\ncheck_bench: {len(regressions)} regression(s) beyond "
              f"{args.threshold:.0%}: {', '.join(regressions)}",
              file=sys.stderr)
        return 1
    return 0


if __name__ == "__main__":
    sys.exit(main())
