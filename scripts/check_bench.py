#!/usr/bin/env python3
"""Perf regression gate for the JSON-lines benchmarks.

Compares a freshly produced bench output (one JSON object per line, as
emitted by bench_perf_smoke / bench_query_throughput /
bench_update_throughput) against a committed baseline and fails on
regressions beyond a threshold.

Design choices, tuned for noisy CI boxes:

  * every line is reduced to ONE canonical metric (seconds-style: lower is
    better; qps/speedup-style: higher is better — see METRIC_PRIORITY);
  * duplicate keys within a file (e.g. the same bench run N times and the
    outputs concatenated) are collapsed to the best observation, so the
    comparison is best-of-N on both sides;
  * benches present on only one side warn instead of failing (adding or
    retiring a workload must not break the gate);
  * the comparison table is written to $GITHUB_STEP_SUMMARY when set.

Exit status: 0 = no regression (or --warn-only), 1 = regression, 2 = usage.

Usage:
  check_bench.py --baseline BENCH_smoke.json --current perf_smoke.json \
                 [--threshold 0.15] [--name perf-smoke] [--warn-only]
"""

import argparse
import json
import os
import sys

# First matching field wins; direction 'lower' or 'higher' is what counts
# as better.
METRIC_PRIORITY = [
    ("seconds", "lower"),
    ("repair_s", "lower"),
    ("speedup", "higher"),
    ("pooled_qps", "higher"),
    ("naive_qps", "higher"),
]

# Integer-valued fields that identify a workload variant within one bench.
KEY_FIELDS = ["bench", "batch", "updates", "threads", "scale"]


def parse_lines(path):
    """Returns {key: (metric_name, direction, best_value)}."""
    out = {}
    with open(path) as f:
        for lineno, line in enumerate(f, 1):
            line = line.strip()
            if not line or line.startswith("#"):
                continue
            try:
                rec = json.loads(line)
            except json.JSONDecodeError:
                print(f"{path}:{lineno}: skipping unparsable line",
                      file=sys.stderr)
                continue
            metric = next(((m, d) for m, d in METRIC_PRIORITY if m in rec),
                          None)
            if metric is None:
                continue
            name, direction = metric
            key = tuple((k, rec[k]) for k in KEY_FIELDS if k in rec)
            value = float(rec[name])
            if key in out:
                _, _, prev = out[key]
                value = min(prev, value) if direction == "lower" \
                    else max(prev, value)
            out[key] = (name, direction, value)
    return out


def fmt_key(key):
    return " ".join(f"{v}" if k == "bench" else f"{k}={v}" for k, v in key)


def main():
    ap = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    ap.add_argument("--baseline", required=True)
    ap.add_argument("--current", required=True)
    ap.add_argument("--threshold", type=float,
                    default=float(os.environ.get(
                        "GRAPHIT_PERF_GATE_THRESHOLD", "0.15")),
                    help="max allowed relative regression (default 0.15)")
    ap.add_argument("--name", default=None,
                    help="label for the summary table")
    ap.add_argument("--warn-only", action="store_true",
                    help="report regressions without failing")
    args = ap.parse_args()

    try:
        base = parse_lines(args.baseline)
        cur = parse_lines(args.current)
    except OSError as e:
        print(f"check_bench: {e}", file=sys.stderr)
        return 2

    label = args.name or os.path.basename(args.current)
    rows = []
    regressions = []
    for key, (metric, direction, b) in sorted(base.items()):
        if key not in cur:
            rows.append((fmt_key(key), metric, b, None, None, "missing"))
            continue
        _, _, c = cur[key]
        # Relative regression: how much worse is current than baseline.
        if b <= 0 or c <= 0:
            change = 0.0
        elif direction == "lower":
            change = c / b - 1.0
        else:
            change = b / c - 1.0
        status = "ok"
        if change > args.threshold:
            status = "REGRESSION"
            regressions.append(fmt_key(key))
        rows.append((fmt_key(key), metric, b, c, change, status))
    for key in sorted(set(cur) - set(base)):
        metric, _, c = cur[key]
        rows.append((fmt_key(key), metric, None, c, None, "new"))

    header = (f"### Perf gate: {label} "
              f"(threshold {args.threshold:.0%})")
    lines = [header, "",
             "| workload | metric | baseline | current | worse by | status |",
             "|---|---|---|---|---|---|"]
    for key, metric, b, c, change, status in rows:
        bs = f"{b:.4f}" if b is not None else "—"
        cs = f"{c:.4f}" if c is not None else "—"
        ch = f"{change:+.1%}" if change is not None else "—"
        mark = {"ok": "✅", "REGRESSION": "❌",
                "missing": "⚠️ missing", "new": "🆕"}[status]
        lines.append(f"| {key} | {metric} | {bs} | {cs} | {ch} | {mark} |")
    if regressions and args.warn_only:
        lines.append("")
        lines.append("_warn-only: regressions reported but not failing._")
    table = "\n".join(lines)

    print(table)
    summary = os.environ.get("GITHUB_STEP_SUMMARY")
    if summary:
        with open(summary, "a") as f:
            f.write(table + "\n\n")

    if regressions and not args.warn_only:
        print(f"\ncheck_bench: {len(regressions)} regression(s) beyond "
              f"{args.threshold:.0%}: {', '.join(regressions)}",
              file=sys.stderr)
        return 1
    return 0


if __name__ == "__main__":
    sys.exit(main())
