#!/usr/bin/env python3
# ===------------------------------------------------------------------------===#
#
# Part of graphit-ordered, an independent C++ reproduction of "Optimizing
# Ordered Graph Algorithms with GraphIt" (CGO 2020). MIT License.
#
# ===------------------------------------------------------------------------===#
"""Project-invariant linter for graphit-ordered.

Enforces four concurrency/serving invariants that the compiler cannot see:

  atomic-discipline      Writes to shared distance/key/priority arrays inside
                         an `#pragma omp parallel` region must go through the
                         helpers in support/Atomics.h (atomicWriteMin,
                         atomicCAS, fetchAdd, ...), never raw `Dist[v] = x`.
  cancel-poll            Every round loop in the ordered engines (src/core,
                         src/algorithms) -- a `while` whose condition drains
                         buckets via nextBucket() or the eager-engine
                         kMaxEagerKey sentinel -- must poll cancellation
                         (CancelToken::expired / CancelLatched) so serving
                         deadlines hold bucket-by-bucket.
  failpoint-registration Every GRAPHIT_FAIL_POINT site must name a string
                         literal registered in failpoints::kAllPoints
                         (support/FailPoint.h) and exercised by
                         tests/failpoint_test.cpp; unregistered or untested
                         points are dead recovery paths.
  pin-escape             No raw DeltaGraph or BaseSegment reference/pointer
                         may escape a pin scope: binding
                         `const DeltaGraph &G = *store.current()` or
                         `const BaseSegment &S = *g.foldRange(lo, hi)`, or
                         calling `.get()` on either temporary shared_ptr,
                         dangles as soon as the full expression ends.

Suppression: a finding is waived by a comment on the same line or the line
above:

    // graphit-lint: allow(<rule>): <non-empty justification>

The justification is mandatory; `allow(<rule>)` without one is itself an
error. Findings print as `path:line: [rule] message` plus a per-rule summary
(consumed by the CI job summary).

Engines: `--engine=libclang` locates OpenMP parallel regions precisely from
the AST using compile_commands.json; `--engine=regex` uses lexical
brace/paren tracking. The default `auto` tries libclang and silently falls
back, so the linter runs anywhere Python does.

Fixture mode (`--fixtures DIR`): every .cpp/.h under DIR is checked against
all rules; the file's first `// lint-expect:` comment declares the expected
verdict (`pass`, or one or more `fail(<rule>)`), and the linter exits
non-zero on any mismatch. This is how tests/lint_fixtures proves each rule
fires, passes, and suppresses.
"""

import argparse
import json
import os
import re
import sys
from collections import Counter

REPO_ROOT = os.path.dirname(os.path.dirname(os.path.abspath(__file__)))

RULES = (
    "atomic-discipline",
    "cancel-poll",
    "failpoint-registration",
    "pin-escape",
)

SUPPRESS_RE = re.compile(
    r"graphit-lint:\s*allow\((?P<rule>[a-z-]+)\)(?P<colon>\s*:\s*(?P<why>\S.*))?"
)

# Write through an element of an array whose name suggests shared ordering
# state (distance / key / priority). Thread-local accumulators are exempted
# by naming convention (Local*/My*/Thread*/Priv*).
SHARED_ARRAY = r"(?!Local|My|Thread|Priv)\w*(?:[Dd]ist|[Kk]ey|[Pp]rio)\w*"
RAW_WRITE_RE = re.compile(
    r"\b(?P<arr>%s)\s*\[[^\]]+\]\s*(?:(?:[-+*/%%|&^]|<<|>>)?=(?!=)|\+\+|--)"
    % SHARED_ARRAY
)
ATOMIC_HELPERS_RE = re.compile(
    r"\b(?:atomicCAS|atomicWriteMin|atomicWriteMax|atomicMin|atomicMax|"
    r"atomicExchange|fetchAdd|atomicLoad|atomicStore)\s*\("
)

ROUND_LOOP_RE = re.compile(r"\bwhile\s*\(")
ROUND_LOOP_MARKERS = ("nextBucket()", "kMaxEagerKey")
CANCEL_POLL_RE = re.compile(
    r"\b(?:Cancel\s*&&|Cancel\s*->\s*expired|isCancelled|CancelLatched|"
    r"pollCancel)\b"
)

FAIL_POINT_RE = re.compile(r"\bGRAPHIT_FAIL_POINT\s*\(\s*(?P<arg>[^)]*)\)")
STRING_LIT_RE = re.compile(r'^"(?P<name>[^"]*)"$')

PIN_ESCAPE_RES = (
    # `const DeltaGraph &G = *store.current();` -- the shared_ptr temporary
    # dies at the end of the declaration and the reference dangles.
    re.compile(r"&\s*\w+\s*=\s*\*\s*[\w.]*(?:->)?\s*current(?:Versioned)?\s*\(\)"),
    # `store.current().get()` -- raw pointer outlives the unnamed pin.
    re.compile(r"\bcurrent(?:Versioned)?\s*\(\)\s*\.\s*get\s*\(\)"),
    # `const BaseSegment &S = *G.foldRange(lo, hi);` -- the shared_ptr
    # temporary that owns the freshly folded segment dies at the end of
    # the declaration; segments must stay owned (named shared_ptr or
    # adopted into a graph) for as long as any row reads through them.
    re.compile(r"&\s*\w+\s*=\s*\*\s*[\w.]*(?:->)?\s*foldRange\s*\("),
    # `G.foldRange(lo, hi).get()` -- raw BaseSegment* outlives the
    # unnamed owner.
    re.compile(r"\bfoldRange\s*\([^)]*\)\s*\.\s*get\s*\(\)"),
)

LINT_EXPECT_RE = re.compile(r"//\s*lint-expect:\s*(?P<spec>.+)")


class Finding:
    def __init__(self, path, line, rule, message):
        self.path = path
        self.line = line  # 1-based
        self.rule = rule
        self.message = message

    def __str__(self):
        rel = os.path.relpath(self.path, REPO_ROOT)
        return "%s:%d: [%s] %s" % (rel, self.line, self.rule, self.message)


# ---------------------------------------------------------------------------
# Lexical utilities shared by both engines.
# ---------------------------------------------------------------------------


def strip_comments_and_strings(text):
    """Blank out comments and string/char literals, preserving offsets, so
    brace/paren tracking and pattern matches never fire inside them."""
    out = list(text)
    i, n = 0, len(text)
    while i < n:
        c = text[i]
        if c == "/" and i + 1 < n and text[i + 1] == "/":
            while i < n and text[i] != "\n":
                out[i] = " "
                i += 1
        elif c == "/" and i + 1 < n and text[i + 1] == "*":
            while i + 1 < n and not (text[i] == "*" and text[i + 1] == "/"):
                if text[i] != "\n":
                    out[i] = " "
                i += 1
            if i + 1 < n:
                out[i] = out[i + 1] = " "
                i += 2
        elif c in "\"'":
            quote = c
            i += 1
            while i < n and text[i] != quote:
                if text[i] == "\\":
                    out[i] = " "
                    i += 1
                if i < n and text[i] != "\n":
                    out[i] = " "
                i += 1
            i += 1
        else:
            i += 1
    return "".join(out)


def line_of(text, offset):
    return text.count("\n", 0, offset) + 1


def block_end(code, start):
    """Offset just past the region beginning at `start`: the matching `}` of
    the first top-level brace block, or the first `;` at depth zero (an
    unbraced single-statement body)."""
    depth_brace = 0
    depth_paren = 0
    seen_brace = False
    i = start
    while i < len(code):
        c = code[i]
        if c == "{":
            depth_brace += 1
            seen_brace = True
        elif c == "}":
            depth_brace -= 1
            if seen_brace and depth_brace == 0:
                return i + 1
        elif c == "(":
            depth_paren += 1
        elif c == ")":
            depth_paren -= 1
        elif c == ";" and not seen_brace and depth_brace == 0 and depth_paren == 0:
            return i + 1
        i += 1
    return len(code)


def matching_paren(code, open_idx):
    depth = 0
    for i in range(open_idx, len(code)):
        if code[i] == "(":
            depth += 1
        elif code[i] == ")":
            depth -= 1
            if depth == 0:
                return i
    return len(code) - 1


# ---------------------------------------------------------------------------
# OpenMP parallel-region discovery: libclang engine with regex fallback.
# ---------------------------------------------------------------------------


def load_compile_args(source_path):
    cc_path = os.path.join(REPO_ROOT, "compile_commands.json")
    try:
        with open(cc_path) as f:
            db = json.load(f)
    except (OSError, ValueError):
        return None
    want = os.path.abspath(source_path)
    for entry in db:
        file_abs = os.path.normpath(
            os.path.join(entry.get("directory", "."), entry.get("file", ""))
        )
        if file_abs == want:
            args = entry.get("command", "").split()[1:]
            # Drop output/input operands; keep flags for the parse.
            cleaned, skip = [], False
            for a in args:
                if skip:
                    skip = False
                    continue
                if a in ("-o", "-c"):
                    skip = a == "-o"
                    continue
                if a == entry.get("file") or a.endswith(os.path.basename(want)):
                    continue
                cleaned.append(a)
            return cleaned
    return None


def omp_regions_libclang(path, code):
    """Return [(start_off, end_off)] of OpenMP parallel constructs, or None
    if libclang is unavailable or the parse fails (caller falls back)."""
    try:
        from clang import cindex
    except ImportError:
        return None
    try:
        index = cindex.Index.create()
        args = load_compile_args(path) or [
            "-std=c++17",
            "-fopenmp",
            "-I%s" % os.path.join(REPO_ROOT, "src"),
        ]
        tu = index.parse(path, args=args)
        regions = []

        def walk(cursor):
            kind = cursor.kind.name
            if "OMP" in kind and "PARALLEL" in kind:
                ext = cursor.extent
                if ext.start.file and os.path.samefile(ext.start.file.name, path):
                    start = offset_of(code, ext.start.line, ext.start.column)
                    end = offset_of(code, ext.end.line, ext.end.column)
                    regions.append((start, end))
            for child in cursor.get_children():
                walk(child)

        walk(tu.cursor)
        return regions
    except Exception:
        return None


def offset_of(code, line, col):
    pos = 0
    for _ in range(line - 1):
        nl = code.find("\n", pos)
        if nl < 0:
            return len(code)
        pos = nl + 1
    return min(pos + col - 1, len(code))


OMP_PRAGMA_RE = re.compile(r"#\s*pragma\s+omp\s+parallel\b[^\n]*")


def omp_regions_regex(code):
    """Lexical fallback: region = pragma line (plus `\\` continuations)
    followed by one brace block or one statement."""
    regions = []
    for m in OMP_PRAGMA_RE.finditer(code):
        end_of_pragma = m.end()
        while end_of_pragma < len(code) and code[end_of_pragma - 1 : end_of_pragma] != "\n":
            end_of_pragma += 1
        # Consume backslash continuations of the pragma itself.
        while code[: end_of_pragma - 1].rstrip().endswith("\\"):
            nl = code.find("\n", end_of_pragma)
            end_of_pragma = len(code) if nl < 0 else nl + 1
        regions.append((m.start(), block_end(code, end_of_pragma)))
    return regions


def omp_regions(path, code, engine):
    if engine in ("auto", "libclang"):
        regions = omp_regions_libclang(path, code)
        if regions is not None:
            return regions
        if engine == "libclang":
            sys.stderr.write(
                "graphit_lint: libclang unavailable for %s; using regex regions\n"
                % path
            )
    return omp_regions_regex(code)


# ---------------------------------------------------------------------------
# Suppressions.
# ---------------------------------------------------------------------------


class Suppressions:
    """allow() comments by (rule, line); malformed ones become findings."""

    def __init__(self, path, raw_lines):
        self.allowed = set()  # (rule, line) pairs, 1-based
        self.errors = []
        for idx, line in enumerate(raw_lines, start=1):
            m = SUPPRESS_RE.search(line)
            if not m:
                continue
            rule = m.group("rule")
            if rule not in RULES:
                self.errors.append(
                    Finding(path, idx, "suppression",
                            "allow(%s) names an unknown rule" % rule)
                )
                continue
            if not m.group("why"):
                self.errors.append(
                    Finding(path, idx, "suppression",
                            "allow(%s) requires a justification after ':'" % rule)
                )
                continue
            # The allow covers its own line and the next code line, skipping
            # the rest of a multi-line comment, so a wrapped justification
            # still reaches the statement below it.
            self.allowed.add((rule, idx))
            j = idx
            while j < len(raw_lines):
                nxt = raw_lines[j].strip()
                j += 1
                if nxt and not nxt.startswith("//"):
                    break
            self.allowed.add((rule, j))

    def covers(self, rule, line):
        return (rule, line) in self.allowed or (rule, line - 1) in self.allowed


# ---------------------------------------------------------------------------
# Rules. Each takes (path, raw text, comment-stripped text) -> [Finding].
# ---------------------------------------------------------------------------


def check_atomic_discipline(path, raw, code, engine):
    findings = []
    for start, end in omp_regions(path, code, engine):
        region = code[start:end]
        for m in RAW_WRITE_RE.finditer(region):
            # An array declared inside the region is per-thread (each OpenMP
            # thread runs its own copy of the region body), not shared.
            decl = re.compile(
                r"[\w>]\s+[&*]?\s*%s\s*[(\[{=]" % re.escape(m.group("arr"))
            )
            if decl.search(region, 0, m.start()):
                continue
            line = line_of(code, start + m.start())
            line_text = raw.splitlines()[line - 1]
            if ATOMIC_HELPERS_RE.search(line_text):
                continue
            findings.append(
                Finding(
                    path, line, "atomic-discipline",
                    "raw write to shared array '%s' inside omp parallel "
                    "region; use a support/Atomics.h helper" % m.group("arr"),
                )
            )
    return findings


def check_cancel_poll(path, raw, code):
    findings = []
    for m in ROUND_LOOP_RE.finditer(code):
        open_paren = code.find("(", m.start())
        close_paren = matching_paren(code, open_paren)
        cond = code[open_paren : close_paren + 1]
        if not any(marker in cond for marker in ROUND_LOOP_MARKERS):
            continue
        body = code[close_paren + 1 : block_end(code, close_paren + 1)]
        if CANCEL_POLL_RE.search(cond) or CANCEL_POLL_RE.search(body):
            continue
        findings.append(
            Finding(
                path, line_of(code, m.start()), "cancel-poll",
                "round loop never polls cancellation; check "
                "CancelToken/CancelLatched once per bucket",
            )
        )
    return findings


def registered_fail_points():
    header = os.path.join(REPO_ROOT, "src", "support", "FailPoint.h")
    try:
        with open(header) as f:
            text = f.read()
    except OSError:
        return None, 0
    m = re.search(r"kAllPoints\[\]\s*=\s*\{(?P<body>[^}]*)\}", text)
    if not m:
        return None, 0
    names = set(re.findall(r'"([^"]+)"', m.group("body")))
    line = line_of(text, m.start())
    return names, line


def tested_fail_points():
    test = os.path.join(REPO_ROOT, "tests", "failpoint_test.cpp")
    try:
        with open(test) as f:
            return set(re.findall(r'"([a-z]+\.[a-z]+)"', f.read()))
    except OSError:
        return set()


def check_failpoint_registration(path, raw, code):
    findings = []
    registered, _ = registered_fail_points()
    tested = tested_fail_points()
    raw_lines = raw.splitlines()
    for m in FAIL_POINT_RE.finditer(raw):
        line = line_of(raw, m.start())
        # The macro's own definition and doc comments are not call sites.
        stripped = raw_lines[line - 1].lstrip()
        if stripped.startswith("#") or stripped.startswith("//"):
            continue
        arg = m.group("arg").strip()
        lit = STRING_LIT_RE.match(arg)
        if not lit:
            findings.append(
                Finding(
                    path, line, "failpoint-registration",
                    "fail-point name '%s' is not a string literal; sites "
                    "must be statically enumerable" % arg,
                )
            )
            continue
        name = lit.group("name")
        if registered is not None and name not in registered:
            findings.append(
                Finding(
                    path, line, "failpoint-registration",
                    "fail point \"%s\" is not registered in "
                    "failpoints::kAllPoints (support/FailPoint.h)" % name,
                )
            )
        elif name not in tested:
            findings.append(
                Finding(
                    path, line, "failpoint-registration",
                    "fail point \"%s\" is never exercised by "
                    "tests/failpoint_test.cpp" % name,
                )
            )
    return findings


def check_registry_coverage():
    """Registry-side check (reported once, against FailPoint.h): every
    registered point must be exercised by the fail-point test."""
    registered, line = registered_fail_points()
    if registered is None:
        return []
    tested = tested_fail_points()
    header = os.path.join(REPO_ROOT, "src", "support", "FailPoint.h")
    return [
        Finding(
            header, line, "failpoint-registration",
            "registered fail point \"%s\" is never exercised by "
            "tests/failpoint_test.cpp" % name,
        )
        for name in sorted(registered - tested)
    ]


def check_pin_escape(path, raw, code):
    findings = []
    for pattern in PIN_ESCAPE_RES:
        for m in pattern.finditer(code):
            findings.append(
                Finding(
                    path, line_of(code, m.start()), "pin-escape",
                    "raw DeltaGraph/segment reference/pointer escapes "
                    "the pin scope; name the Snapshot (or segment "
                    "shared_ptr) first so the owner outlives every use",
                )
            )
    return findings


# ---------------------------------------------------------------------------
# Driver.
# ---------------------------------------------------------------------------

CANCEL_SCOPE = (
    os.path.join("src", "core") + os.sep,
    os.path.join("src", "algorithms") + os.sep,
)


def lint_file(path, engine, all_rules=False):
    with open(path) as f:
        raw = f.read()
    code = strip_comments_and_strings(raw)
    sup = Suppressions(path, raw.splitlines())
    rel = os.path.relpath(path, REPO_ROOT)

    findings = []
    findings += check_atomic_discipline(path, raw, code, engine)
    if all_rules or any(part in rel for part in CANCEL_SCOPE):
        findings += check_cancel_poll(path, raw, code)
    findings += check_failpoint_registration(path, raw, code)
    findings += check_pin_escape(path, raw, code)

    kept = [f for f in findings if not sup.covers(f.rule, f.line)]
    return kept + sup.errors


def iter_sources(paths):
    exts = (".cpp", ".h", ".hpp", ".cc")
    for p in paths:
        if os.path.isfile(p):
            yield p
            continue
        for dirpath, _, names in os.walk(p):
            for name in sorted(names):
                if name.endswith(exts):
                    yield os.path.join(dirpath, name)


def run_tree(paths, engine):
    findings = []
    for path in iter_sources(paths):
        findings.extend(lint_file(path, engine))
    findings.extend(check_registry_coverage())
    for f in findings:
        print(f)
    counts = Counter(f.rule for f in findings)
    total = sum(counts.values())
    summary = ", ".join("%s=%d" % (r, counts.get(r, 0)) for r in RULES)
    print("graphit_lint: %d finding(s) [%s]" % (total, summary))
    return 1 if findings else 0


def expected_verdict(path):
    """Parse the fixture's `// lint-expect:` header. Returns a set of rule
    names expected to fire (empty set means expected clean)."""
    with open(path) as f:
        for line in f:
            m = LINT_EXPECT_RE.search(line)
            if not m:
                continue
            spec = m.group("spec").strip()
            if spec == "pass":
                return set()
            rules = set(re.findall(r"fail\(([a-z-]+)\)", spec))
            if rules:
                return rules
    return None


def run_fixtures(fixture_dir, engine):
    failures = 0
    checked = 0
    for path in iter_sources([fixture_dir]):
        expected = expected_verdict(path)
        rel = os.path.relpath(path, REPO_ROOT)
        if expected is None:
            print("%s: missing '// lint-expect:' header" % rel)
            failures += 1
            continue
        fired = {f.rule for f in lint_file(path, engine, all_rules=True)}
        checked += 1
        if fired == expected:
            continue
        failures += 1
        print(
            "%s: expected %s, got %s"
            % (
                rel,
                "pass" if not expected else "fail(%s)" % ",".join(sorted(expected)),
                "pass" if not fired else "fail(%s)" % ",".join(sorted(fired)),
            )
        )
        for f in lint_file(path, engine, all_rules=True):
            print("    %s" % f)
    print(
        "graphit_lint: fixtures %d checked, %d mismatch(es)" % (checked, failures)
    )
    return 1 if failures else 0


def main():
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument(
        "paths", nargs="*",
        default=[os.path.join(REPO_ROOT, "src")],
        help="files or directories to lint (default: src/)",
    )
    parser.add_argument(
        "--engine", choices=("auto", "libclang", "regex"), default="auto",
        help="OpenMP region discovery engine (default: auto)",
    )
    parser.add_argument(
        "--fixtures", metavar="DIR",
        help="run in fixture mode against DIR and verify lint-expect headers",
    )
    args = parser.parse_args()
    if args.fixtures:
        return run_fixtures(args.fixtures, args.engine)
    return run_tree(args.paths, args.engine)


if __name__ == "__main__":
    sys.exit(main())
